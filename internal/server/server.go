// Package server is flood's network serving tier: an HTTP/JSON front end
// that speaks floodsql against an AdaptiveIndex (optionally durable), built
// for many concurrent clients.
//
// Three mechanisms turn concurrent request traffic into the index's
// preferred execution shape:
//
//   - Micro-batching: single-rectangle aggregate queries from concurrent
//     handlers are gathered for a small window (or until a batch fills) and
//     executed as ONE ExecuteBatchContext call, giving inter-query
//     parallelism over the worker pool while each member keeps its
//     zero-allocation sequential scan.
//   - Admission control: a bounded in-flight semaphore with a short queue
//     wait; requests that cannot be admitted in time are shed fast with
//     HTTP 429 instead of piling onto the index, and queue wait is
//     accounted in the server stats.
//   - Result caching: aggregate results for hot query shapes are memoized
//     under an epoch version that every mutation and every adaptive
//     relearn/merge swap advances, so a cached response is never served
//     across a state change.
//
// Every request runs under a deadline (the server's request timeout,
// tightened per request via timeout_ms) riding the context-aware execution
// API: queries over deadline stop scanning cooperatively and return 504.
//
// Endpoints: POST /query (floodsql: aggregates, projections, mutations),
// POST /insert (bulk rows), GET /schema (column metadata for load
// generators), GET /stats (serving counters), GET /healthz.
// See docs/SERVING.md for the full contract.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	flood "flood"
	"flood/floodsql"
	"flood/internal/colstore"
)

// Config tunes the serving tier. The zero value (or nil) picks defaults
// sized for a small multi-core box; every knob is independent.
type Config struct {
	// BatchWindow is how long the collector holds an aggregate query open
	// for companions before executing the batch (default 250µs). Smaller
	// trades batching efficiency for latency.
	BatchWindow time.Duration
	// BatchMax caps one batch; a full batch executes immediately without
	// waiting out the window (default 64).
	BatchMax int
	// MaxInFlight bounds concurrently admitted requests (default 256).
	MaxInFlight int
	// QueueWait is how long an arriving request may wait for an admission
	// slot before being shed with 429 (default 2ms). Zero sheds
	// immediately when the semaphore is full.
	QueueWait time.Duration
	// CacheEntries bounds the aggregate result cache (default 1024;
	// negative disables caching).
	CacheEntries int
	// RequestTimeout is the default per-request execution deadline
	// (default 5s). A request's timeout_ms can tighten it, never extend.
	RequestTimeout time.Duration
	// MaxResultRows caps rows returned by one projection (default 10000);
	// a SELECT without LIMIT is truncated at the cap and marked truncated.
	MaxResultRows int
}

func (c *Config) withDefaults() Config {
	out := Config{}
	if c != nil {
		out = *c
	}
	if out.BatchWindow <= 0 {
		out.BatchWindow = 250 * time.Microsecond
	}
	if out.BatchMax <= 0 {
		out.BatchMax = 64
	}
	if out.MaxInFlight <= 0 {
		out.MaxInFlight = 256
	}
	if out.QueueWait < 0 {
		out.QueueWait = 0
	} else if out.QueueWait == 0 {
		out.QueueWait = 2 * time.Millisecond
	}
	if out.CacheEntries == 0 {
		out.CacheEntries = 1024
	}
	if out.RequestTimeout <= 0 {
		out.RequestTimeout = 5 * time.Second
	}
	if out.MaxResultRows <= 0 {
		out.MaxResultRows = 10000
	}
	return out
}

// Store is the query surface the serving tier sits on: plain, batched, and
// context-aware execution plus a monotonic epoch for cache invalidation and
// a row count. *flood.AdaptiveIndex and *flood.ShardedIndex satisfy it (a
// durable flat store serves queries through its embedded adaptive index).
type Store interface {
	flood.Index
	ExecuteBatchContext(ctx context.Context, queries []flood.Query, aggs []flood.Aggregator) ([]flood.Stats, error)
	Epoch() int64
	NumRows() int
}

// mutableIndex is the store surface mutations route through; AdaptiveIndex,
// DurableIndex, and ShardedIndex all satisfy it (the durable facades add
// WAL acknowledgment before returning).
type mutableIndex interface {
	flood.Index
	Insert(row []int64) error
	flood.Deleter
	flood.Updater
}

// Server serves floodsql over HTTP against one adaptive index — flat or
// sharded. Construct with New, NewDurable, or NewSharded, mount Handler on
// an http.Server, and call Close on the way out (after http.Server.Shutdown)
// to drain batches and release the store.
type Server struct {
	store  Store
	a      *flood.AdaptiveIndex // flat store; nil when sharded
	sh     *flood.ShardedIndex  // sharded store; nil when flat
	dur    *flood.DurableIndex
	mut    mutableIndex
	schema *flood.Schema
	cfg    Config

	sem        chan struct{}
	col        *collector
	cache      *resultCache
	baseCtx    context.Context
	baseCancel context.CancelFunc

	closing  atomic.Bool
	closed   sync.Once
	closeErr error
	handlers sync.WaitGroup

	muts           atomic.Int64
	requests       atomic.Int64
	aggQueries     atomic.Int64
	selects        atomic.Int64
	mutations      atomic.Int64
	insertedRows   atomic.Int64
	shed           atomic.Int64
	timeouts       atomic.Int64
	errorCount     atomic.Int64
	queuedRequests atomic.Int64
	queueWaitNs    atomic.Int64
	cacheHits      atomic.Int64
	cacheMisses    atomic.Int64
}

// New wraps an adaptive index in the serving tier. The server takes
// ownership of the index's lifecycle: Close stops its background work.
func New(a *flood.AdaptiveIndex, cfg *Config) *Server {
	return newServer(a, nil, cfg)
}

// NewDurable is New over a durable store: mutations acknowledge through the
// WAL, and Close checkpoints before releasing the directory.
func NewDurable(d *flood.DurableIndex, cfg *Config) *Server {
	return newServer(d.Adaptive(), d, cfg)
}

func newServer(a *flood.AdaptiveIndex, d *flood.DurableIndex, cfg *Config) *Server {
	s := baseServer(cfg)
	s.a = a
	s.dur = d
	s.store = a
	s.schema = a.Index().Schema()
	if d != nil {
		s.mut = d
	} else {
		s.mut = a
	}
	s.col = newCollector(s.store, s.cfg.BatchWindow, s.cfg.BatchMax, s.baseCtx)
	return s
}

// NewSharded wraps a sharded store — in-memory (flood.NewSharded) or
// durable (flood.CreateShardedDurable / OpenShardedDurable) — in the
// serving tier. GET /stats gains a per-shard block, and Close checkpoints
// every shard through the manifest-rooted layout before releasing the
// store.
func NewSharded(sh *flood.ShardedIndex, cfg *Config) *Server {
	s := baseServer(cfg)
	s.sh = sh
	s.store = sh
	s.mut = sh
	s.schema = sh.Schema()
	s.col = newCollector(s.store, s.cfg.BatchWindow, s.cfg.BatchMax, s.baseCtx)
	return s
}

// baseServer builds the store-independent part of a Server.
func baseServer(cfg *Config) *Server {
	c := cfg.withDefaults()
	ctx, cancel := context.WithCancel(context.Background())
	return &Server{
		cfg:        c,
		sem:        make(chan struct{}, c.MaxInFlight),
		cache:      newResultCache(c.CacheEntries),
		baseCtx:    ctx,
		baseCancel: cancel,
	}
}

// version is the cache epoch: acknowledged mutations plus completed
// adaptive generation swaps (summed across shards for a sharded store).
// Both terms are monotonic, so any mutation, relearn, or merge — in any
// shard — strictly advances it and strands every older entry.
func (s *Server) version() uint64 {
	return uint64(s.muts.Load()) + uint64(s.store.Epoch())
}

// refTable is a table describing the store's columns: the flat store's base
// table, or shard 0's for a sharded store (all shards share column names
// and schema; only /schema's value bounds need the per-shard fold).
func (s *Server) refTable() *flood.Table {
	if s.sh != nil {
		return s.sh.Shard(0).Index().Table()
	}
	return s.a.Index().Table()
}

// numCols is the store's column count.
func (s *Server) numCols() int { return s.refTable().NumCols() }

// Close drains and shuts down: in-flight handlers finish, queued batches
// flush through the collector, and then the store is released — Checkpoint
// followed by Close for a durable server (so acknowledged writes are both
// WAL-durable and snapshotted), Close for a plain adaptive one. Callers
// running an http.Server should Shutdown it first so no new requests race
// the drain; requests arriving during Close are refused with 503. Safe to
// call more than once.
func (s *Server) Close() error {
	s.closing.Store(true)
	s.closed.Do(func() {
		s.handlers.Wait()
		s.col.close()
		s.baseCancel()
		if s.sh != nil {
			if err := s.sh.Checkpoint(); err != nil {
				s.closeErr = fmt.Errorf("server: shutdown checkpoint: %w", err)
				s.sh.Close()
				return
			}
			s.closeErr = s.sh.Close()
			return
		}
		if s.dur != nil {
			if err := s.dur.Checkpoint(); err != nil {
				s.closeErr = fmt.Errorf("server: shutdown checkpoint: %w", err)
				s.dur.Close()
				return
			}
			s.closeErr = s.dur.Close()
			return
		}
		s.a.Close()
	})
	return s.closeErr
}

// Handler returns the HTTP routing surface; mount it as an http.Server (or
// httptest.Server) handler.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /query", s.wrap(s.handleQuery))
	mux.HandleFunc("POST /insert", s.wrap(s.handleInsert))
	mux.HandleFunc("GET /schema", s.wrap(s.handleSchema))
	mux.HandleFunc("GET /stats", s.wrap(s.handleStats))
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
		w.Write([]byte("ok\n"))
	})
	return mux
}

// wrap is the per-request envelope: request counting and the shutdown
// barrier (register with the drain group first, then check the closing
// flag, so Close's Wait never misses a handler that slipped past the flag).
func (s *Server) wrap(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		s.handlers.Add(1)
		defer s.handlers.Done()
		if s.closing.Load() {
			writeError(w, http.StatusServiceUnavailable, "server is shutting down")
			return
		}
		s.requests.Add(1)
		h(w, r)
	}
}

// admit acquires an in-flight slot, waiting up to QueueWait. It returns the
// release func, the time spent queued, and false when the request was shed.
func (s *Server) admit(ctx context.Context) (func(), time.Duration, bool) {
	select {
	case s.sem <- struct{}{}:
		return s.release, 0, true
	default:
	}
	s.queuedRequests.Add(1)
	start := time.Now()
	timer := time.NewTimer(s.cfg.QueueWait)
	defer timer.Stop()
	select {
	case s.sem <- struct{}{}:
		wait := time.Since(start)
		s.queueWaitNs.Add(int64(wait))
		return s.release, wait, true
	case <-timer.C:
	case <-ctx.Done():
	}
	s.queueWaitNs.Add(int64(time.Since(start)))
	s.shed.Add(1)
	return nil, time.Since(start), false
}

func (s *Server) release() { <-s.sem }

// deadlineFor resolves one request's execution deadline: the server's
// request timeout, tightened (never extended) by the request's timeout_ms.
func (s *Server) deadlineFor(timeoutMillis int64) time.Time {
	timeout := s.cfg.RequestTimeout
	if timeoutMillis > 0 {
		if t := time.Duration(timeoutMillis) * time.Millisecond; t < timeout {
			timeout = t
		}
	}
	return time.Now().Add(timeout)
}

// parse compiles sql against the serving schema (typed) or the current
// epoch's raw table.
func (s *Server) parse(sql string) (*floodsql.Statement, error) {
	if s.schema != nil {
		return floodsql.ParseTyped(sql, s.schema)
	}
	return floodsql.Parse(sql, s.refTable())
}

// statementQueries is the statement's DNF rectangles, or one unfiltered
// query when it has no WHERE clause.
func (s *Server) statementQueries(st *floodsql.Statement) []flood.Query {
	if len(st.Disjuncts) == 0 {
		return []flood.Query{flood.NewQuery(s.numCols())}
	}
	return st.Disjuncts
}

// aggregatorFor builds the statement's aggregator (nil for non-aggregates).
func aggregatorFor(st *floodsql.Statement) flood.Aggregator {
	switch st.Agg {
	case "count":
		return flood.NewCount()
	case "sum":
		return flood.NewSum(st.AggCol)
	case "min":
		return flood.NewMin(st.AggCol)
	case "max":
		return flood.NewMax(st.AggCol)
	}
	return nil
}

// typedValue decodes an aggregate result into the aggregated column's
// logical type (nil for an empty MIN/MAX, where the raw sentinel has no
// meaningful decoding).
func (s *Server) typedValue(st *floodsql.Statement, value, matched int64) any {
	if s.schema == nil || st.AggCol < 0 {
		return value
	}
	if (st.Agg == "min" || st.Agg == "max") && matched == 0 {
		return nil
	}
	return s.schema.DecodeValue(st.AggCol, value)
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	var req QueryRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: "+err.Error())
		return
	}
	if strings.TrimSpace(req.SQL) == "" {
		writeError(w, http.StatusBadRequest, "empty sql")
		return
	}
	release, queueWait, ok := s.admit(r.Context())
	if !ok {
		w.Header().Set("Retry-After", "0")
		writeError(w, http.StatusTooManyRequests, "server overloaded; retry")
		return
	}
	defer release()

	st, err := s.parse(req.SQL)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	deadline := s.deadlineFor(req.TimeoutMillis)
	ctx, cancel := context.WithDeadline(r.Context(), deadline)
	defer cancel()
	start := time.Now()

	switch st.Agg {
	case "select":
		s.selects.Add(1)
		s.runSelect(w, ctx, st, start, queueWait)
	case "delete", "update", "insert":
		s.mutations.Add(1)
		n, err := st.Exec(s.mut)
		if err != nil {
			s.errorCount.Add(1)
			writeError(w, http.StatusBadRequest, err.Error())
			return
		}
		s.muts.Add(1)
		if st.Agg == "insert" {
			s.insertedRows.Add(n)
		}
		writeJSON(w, QueryResponse{
			Kind: "exec", Affected: n,
			QueueMicros: queueWait.Microseconds(), ElapsedMicros: time.Since(start).Microseconds(),
		})
	default:
		s.aggQueries.Add(1)
		s.runAggregate(w, ctx, st, strings.TrimSpace(req.SQL), deadline, start, queueWait)
	}
}

// runAggregate serves one aggregation: result cache first, then the
// micro-batch collector for single-rectangle statements (the hot path), or
// a direct disjoint-decomposition execution for OR predicates.
func (s *Server) runAggregate(w http.ResponseWriter, ctx context.Context, st *floodsql.Statement, key string, deadline time.Time, start time.Time, queueWait time.Duration) {
	ver := s.version()
	if e, ok := s.cache.get(key, ver); ok {
		s.cacheHits.Add(1)
		writeJSON(w, QueryResponse{
			Kind: "agg", Agg: st.Agg, Value: e.value,
			Typed: s.typedValue(st, e.value, e.matched), Matched: e.matched, Cached: true,
			QueueMicros: queueWait.Microseconds(), ElapsedMicros: time.Since(start).Microseconds(),
		})
		return
	}
	if s.cache != nil {
		s.cacheMisses.Add(1)
	}
	agg := aggregatorFor(st)
	if agg == nil {
		writeError(w, http.StatusBadRequest, "unsupported aggregate "+st.Agg)
		return
	}
	qs := s.statementQueries(st)
	var stats flood.Stats
	var err error
	batchSize := 0
	if len(qs) == 1 {
		j := &aggJob{q: qs[0], agg: agg, deadline: deadline, done: make(chan aggResult, 1)}
		if s.col.submit(j) != nil {
			s.shed.Add(1)
			w.Header().Set("Retry-After", "0")
			writeError(w, http.StatusTooManyRequests, "batch queue full; retry")
			return
		}
		select {
		case res := <-j.done:
			stats, err, batchSize = res.stats, res.err, res.batchSize
		case <-ctx.Done():
			s.timeouts.Add(1)
			writeError(w, http.StatusGatewayTimeout, "deadline exceeded waiting for batch")
			return
		}
	} else {
		stats, err = flood.ExecuteOrContext(ctx, s.store, qs, agg)
	}
	if err != nil {
		if errors.Is(err, flood.ErrCanceled) {
			s.timeouts.Add(1)
			writeError(w, http.StatusGatewayTimeout, "deadline exceeded after scanning "+fmt.Sprint(stats.Scanned)+" rows")
			return
		}
		s.errorCount.Add(1)
		writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	value := agg.Result()
	s.cache.put(key, cacheEntry{ver: ver, value: value, matched: stats.Matched})
	writeJSON(w, QueryResponse{
		Kind: "agg", Agg: st.Agg, Value: value,
		Typed: s.typedValue(st, value, stats.Matched), Matched: stats.Matched,
		BatchSize: batchSize, Scanned: stats.Scanned,
		QueueMicros: queueWait.Microseconds(), ElapsedMicros: time.Since(start).Microseconds(),
	})
}

// runSelect serves one projection through the typed row cursor, capping the
// response at MaxResultRows.
func (s *Server) runSelect(w http.ResponseWriter, ctx context.Context, st *floodsql.Statement, start time.Time, queueWait time.Duration) {
	limit := st.Limit
	capped := false
	if limit == 0 || limit > s.cfg.MaxResultRows {
		limit = s.cfg.MaxResultRows
		capped = true
	}
	rows, stats, err := s.schema.SelectOrContext(ctx, s.store, s.statementQueries(st), &flood.QueryOptions{Limit: limit}, st.Projection...)
	if err != nil {
		if errors.Is(err, flood.ErrCanceled) {
			s.timeouts.Add(1)
			writeError(w, http.StatusGatewayTimeout, "deadline exceeded after scanning "+fmt.Sprint(stats.Scanned)+" rows")
		} else {
			s.errorCount.Add(1)
			writeError(w, http.StatusInternalServerError, err.Error())
		}
		return
	}
	defer rows.Close()
	cols := rows.Columns()
	out := make([][]any, 0, rows.Len())
	for rows.Next() {
		vals := make([]any, len(cols))
		for j := range cols {
			vals[j] = rows.Value(j)
		}
		out = append(out, vals)
	}
	writeJSON(w, QueryResponse{
		Kind: "rows", Columns: cols, Rows: out,
		Truncated: capped && len(out) == limit, Scanned: stats.Scanned,
		QueueMicros: queueWait.Microseconds(), ElapsedMicros: time.Since(start).Microseconds(),
	})
}

func (s *Server) handleInsert(w http.ResponseWriter, r *http.Request) {
	dec := json.NewDecoder(r.Body)
	dec.UseNumber()
	var req InsertRequest
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: "+err.Error())
		return
	}
	if len(req.Rows) == 0 {
		writeError(w, http.StatusBadRequest, "no rows")
		return
	}
	release, _, ok := s.admit(r.Context())
	if !ok {
		w.Header().Set("Retry-After", "0")
		writeError(w, http.StatusTooManyRequests, "server overloaded; retry")
		return
	}
	defer release()
	s.mutations.Add(1)
	var inserted int64
	for i, raw := range req.Rows {
		row, err := s.encodeRow(raw)
		if err == nil {
			err = s.mut.Insert(row)
		}
		if err != nil {
			if inserted > 0 {
				s.muts.Add(1)
				s.insertedRows.Add(inserted)
			}
			s.errorCount.Add(1)
			writeJSON2(w, http.StatusBadRequest, InsertResponse{
				Inserted: inserted,
				Error:    fmt.Sprintf("row %d: %v", i, err),
			})
			return
		}
		inserted++
	}
	s.muts.Add(1)
	s.insertedRows.Add(inserted)
	writeJSON(w, InsertResponse{Inserted: inserted})
}

// encodeRow converts one JSON row to the physical int64 row: through the
// typed schema when one is attached (int/float/string; time columns accept
// RFC3339 strings or raw tick numbers), raw int64 numbers otherwise.
func (s *Server) encodeRow(raw []json.RawMessage) ([]int64, error) {
	cols := s.numCols()
	if len(raw) != cols {
		return nil, fmt.Errorf("row has %d values, table has %d columns", len(raw), cols)
	}
	if s.schema == nil {
		out := make([]int64, cols)
		for i, m := range raw {
			var v int64
			if err := json.Unmarshal(m, &v); err != nil {
				return nil, fmt.Errorf("column %d: want int64: %v", i, err)
			}
			out[i] = v
		}
		return out, nil
	}
	vals := make([]any, cols)
	for i, m := range raw {
		v, err := decodeTypedJSON(s.schema.KindAt(i), m)
		if err != nil {
			return nil, fmt.Errorf("column %q: %w", s.schema.Name(i), err)
		}
		vals[i] = v
	}
	return s.schema.EncodeRow(vals...)
}

// decodeTypedJSON maps one JSON value onto the logical type EncodeRow
// expects for the column kind.
func decodeTypedJSON(kind flood.Kind, m json.RawMessage) (any, error) {
	switch kind {
	case flood.KindInt64:
		var v int64
		if err := json.Unmarshal(m, &v); err != nil {
			return nil, fmt.Errorf("want integer: %v", err)
		}
		return v, nil
	case flood.KindFloat64:
		var v float64
		if err := json.Unmarshal(m, &v); err != nil {
			return nil, fmt.Errorf("want number: %v", err)
		}
		return v, nil
	case flood.KindString:
		var v string
		if err := json.Unmarshal(m, &v); err != nil {
			return nil, fmt.Errorf("want string: %v", err)
		}
		return v, nil
	case flood.KindTime:
		var sv string
		if err := json.Unmarshal(m, &sv); err == nil {
			t, err := time.Parse(time.RFC3339Nano, sv)
			if err != nil {
				return nil, fmt.Errorf("want RFC3339 time: %v", err)
			}
			return t, nil
		}
		var ticks int64
		if err := json.Unmarshal(m, &ticks); err != nil {
			return nil, fmt.Errorf("want RFC3339 string or tick number: %v", err)
		}
		return time.Unix(0, ticks), nil
	}
	return nil, fmt.Errorf("unsupported column kind %v", kind)
}

func (s *Server) handleSchema(w http.ResponseWriter, r *http.Request) {
	tbl := s.refTable()
	resp := SchemaResponse{Rows: s.store.NumRows(), Typed: s.schema != nil}
	for i := 0; i < tbl.NumCols(); i++ {
		kind := "int64"
		if s.schema != nil {
			kind = s.schema.KindAt(i).String()
		}
		mn, mx := s.storeColumnBounds(i)
		resp.Columns = append(resp.Columns, ColumnInfo{
			Name: tbl.Name(i), Kind: kind, Min: mn, Max: mx,
		})
	}
	writeJSON(w, resp)
}

// storeColumnBounds folds column i's physical [min,max] domain across the
// whole store — every shard's base table for a sharded one.
func (s *Server) storeColumnBounds(i int) (int64, int64) {
	if s.sh == nil {
		return columnBounds(s.a.Index().Table().Column(i))
	}
	mn, mx := int64(0), int64(0)
	seen := false
	for k := 0; k < s.sh.NumShards(); k++ {
		c := s.sh.Shard(k).Index().Table().Column(i)
		if c.Len() == 0 {
			continue
		}
		bmn, bmx := columnBounds(c)
		if !seen || bmn < mn {
			mn = bmn
		}
		if !seen || bmx > mx {
			mx = bmx
		}
		seen = true
	}
	return mn, mx
}

// columnBounds folds the column's per-block zone maps into a physical
// [min,max] domain (0,0 for an empty column).
func columnBounds(c *colstore.Column) (int64, int64) {
	if c.Len() == 0 {
		return 0, 0
	}
	mn, mx := int64(math.MaxInt64), int64(math.MinInt64)
	for b := 0; b < c.NumBlocks(); b++ {
		bmn, bmx := c.BlockBounds(b)
		if bmn < mn {
			mn = bmn
		}
		if bmx > mx {
			mx = bmx
		}
	}
	return mn, mx
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, s.Stats())
}

// Stats snapshots the serving counters (also the GET /stats payload).
func (s *Server) Stats() Stats {
	st := Stats{
		Requests:        s.requests.Load(),
		AggQueries:      s.aggQueries.Load(),
		Selects:         s.selects.Load(),
		Mutations:       s.mutations.Load(),
		InsertedRows:    s.insertedRows.Load(),
		Shed:            s.shed.Load(),
		Timeouts:        s.timeouts.Load(),
		Errors:          s.errorCount.Load(),
		QueuedRequests:  s.queuedRequests.Load(),
		QueueWaitMicros: s.queueWaitNs.Load() / 1000,
		Batches:         s.col.batches.Load(),
		BatchedQueries:  s.col.batchedJobs.Load(),
		MultiBatches:    s.col.multiBatches.Load(),
		MaxBatch:        s.col.maxBatch.Load(),
		CacheHits:       s.cacheHits.Load(),
		CacheMisses:     s.cacheMisses.Load(),
		CacheVersion:    s.version(),
		InFlight:        len(s.sem),
		IndexEpoch:      s.store.Epoch(),
	}
	if s.sh != nil {
		for _, sh := range s.sh.ShardStats() {
			st.BaseRows += sh.Rows
			st.PendingRows += sh.Pending
			st.Relearns += sh.Relearns
			st.Merges += sh.Merges
			st.Shards = append(st.Shards, ShardInfo{
				Shard:    sh.Shard,
				Lo:       sh.Lo,
				Hi:       sh.Hi,
				Rows:     sh.Rows,
				Pending:  sh.Pending,
				Epoch:    sh.Epoch,
				Relearns: sh.Relearns,
				Merges:   sh.Merges,
				Queries:  sh.Queries,
			})
		}
		for i := 0; i < s.sh.NumShards(); i++ {
			if s.sh.Shard(i).Stats().Rebuilding {
				st.Rebuilding = true
				break
			}
		}
	} else {
		ast := s.a.Stats()
		st.BaseRows = ast.BaseRows
		st.PendingRows = ast.PendingRows
		st.Relearns = ast.Relearns
		st.Merges = ast.Merges
		st.Rebuilding = ast.Rebuilding
	}
	if st.Batches > 0 {
		st.AvgBatch = float64(st.BatchedQueries) / float64(st.Batches)
	}
	return st
}

// --- wire types ---

// QueryRequest is the POST /query body.
type QueryRequest struct {
	// SQL is the floodsql statement to run.
	SQL string `json:"sql"`
	// TimeoutMillis tightens the server's request timeout for this request
	// (0 keeps the server default; larger values are capped to it).
	TimeoutMillis int64 `json:"timeout_ms,omitempty"`
}

// QueryResponse is the POST /query result envelope; Kind selects which
// fields are meaningful ("agg", "rows", or "exec").
type QueryResponse struct {
	// Kind is "agg" (aggregate), "rows" (projection), or "exec" (mutation).
	Kind string `json:"kind"`
	// Agg names the aggregate function for Kind "agg".
	Agg string `json:"agg,omitempty"`
	// Value is the aggregate result in the physical int64 domain.
	Value int64 `json:"value,omitempty"`
	// Typed is the aggregate result decoded through the schema (float for
	// decimal columns, RFC3339 for time MIN/MAX, null for an empty
	// MIN/MAX).
	Typed any `json:"typed,omitempty"`
	// Matched is the number of rows the aggregate saw.
	Matched int64 `json:"matched,omitempty"`
	// Cached reports the result was served from the epoch-keyed cache.
	Cached bool `json:"cached,omitempty"`
	// BatchSize is how many concurrent queries shared this request's
	// ExecuteBatchContext call (0 when the request bypassed the collector).
	BatchSize int `json:"batch_size,omitempty"`
	// Columns and Rows carry a projection result (Kind "rows"); values are
	// decoded through the schema.
	Columns []string `json:"columns,omitempty"`
	Rows    [][]any  `json:"rows,omitempty"`
	// Truncated reports the projection hit the server's row cap.
	Truncated bool `json:"truncated,omitempty"`
	// Affected is the mutation's affected-row count (Kind "exec").
	Affected int64 `json:"affected,omitempty"`
	// Scanned is the number of storage rows visited.
	Scanned int64 `json:"scanned,omitempty"`
	// QueueMicros is time spent waiting for admission; ElapsedMicros is
	// parse-through-execution service time.
	QueueMicros   int64 `json:"queue_us"`
	ElapsedMicros int64 `json:"elapsed_us"`
}

// InsertRequest is the POST /insert body: rows in schema column order.
// Values are JSON numbers for int/float columns, strings for string
// columns, and RFC3339 strings (or raw tick numbers) for time columns.
type InsertRequest struct {
	// Rows holds the rows to insert, one array of column values each.
	Rows [][]json.RawMessage `json:"rows"`
}

// InsertResponse is the POST /insert result. Inserted rows are acknowledged
// — on a durable server they are WAL-fsynced — before the response is sent.
type InsertResponse struct {
	// Inserted counts rows durably accepted (on error, the prefix that
	// succeeded before it).
	Inserted int64 `json:"inserted"`
	// Error describes the first failing row, when any.
	Error string `json:"error,omitempty"`
}

// ColumnInfo describes one column for load generators: its logical kind and
// the physical int64 domain observed in the base table.
type ColumnInfo struct {
	// Name is the column name; Kind its logical kind ("int64", "float64",
	// "string", "time").
	Name string `json:"name"`
	Kind string `json:"kind"`
	// Min and Max bound the column's physical int64 values.
	Min int64 `json:"min"`
	Max int64 `json:"max"`
}

// SchemaResponse is the GET /schema payload.
type SchemaResponse struct {
	// Columns lists the table's columns in schema order.
	Columns []ColumnInfo `json:"columns"`
	// Rows is the current total row count (base + pending inserts).
	Rows int `json:"rows"`
	// Typed reports whether the server carries a typed schema (projections
	// and string/float literals available).
	Typed bool `json:"typed"`
}

// Stats is the GET /stats payload: serving counters since process start
// plus a snapshot of the adaptive index lifecycle.
type Stats struct {
	// Requests counts HTTP requests accepted past the shutdown barrier;
	// AggQueries/Selects/Mutations split the dispatched statements.
	Requests   int64 `json:"requests"`
	AggQueries int64 `json:"agg_queries"`
	Selects    int64 `json:"selects"`
	Mutations  int64 `json:"mutations"`
	// InsertedRows counts rows accepted through /insert and INSERT.
	InsertedRows int64 `json:"inserted_rows"`
	// Shed counts requests refused with 429 (admission or batch intake
	// full); Timeouts counts 504s; Errors counts 4xx/5xx execution
	// failures.
	Shed     int64 `json:"shed"`
	Timeouts int64 `json:"timeouts"`
	Errors   int64 `json:"errors"`
	// QueuedRequests counts admissions that had to wait; QueueWaitMicros
	// is their cumulative wait.
	QueuedRequests  int64 `json:"queued_requests"`
	QueueWaitMicros int64 `json:"queue_wait_us"`
	// Batches counts collector executions; BatchedQueries the member
	// queries they carried; MultiBatches those with more than one member;
	// MaxBatch the largest batch; AvgBatch the mean members per batch.
	Batches        int64   `json:"batches"`
	BatchedQueries int64   `json:"batched_queries"`
	MultiBatches   int64   `json:"multi_batches"`
	MaxBatch       int64   `json:"max_batch"`
	AvgBatch       float64 `json:"avg_batch"`
	// CacheHits/CacheMisses count result-cache outcomes; CacheVersion is
	// the current invalidation epoch (mutations + index swaps).
	CacheHits    int64  `json:"cache_hits"`
	CacheMisses  int64  `json:"cache_misses"`
	CacheVersion uint64 `json:"cache_version"`
	// InFlight is the current admitted-request gauge.
	InFlight int `json:"in_flight"`
	// IndexEpoch, BaseRows, PendingRows, Relearns, Merges, and Rebuilding
	// snapshot the adaptive index lifecycle. On a sharded server the row
	// and rebuild counters are summed across shards, IndexEpoch is the sum
	// of shard epochs, and Rebuilding reports any shard rebuilding.
	IndexEpoch  int64 `json:"index_epoch"`
	BaseRows    int   `json:"base_rows"`
	PendingRows int   `json:"pending_rows"`
	Relearns    int64 `json:"relearns"`
	Merges      int64 `json:"merges"`
	Rebuilding  bool  `json:"rebuilding"`
	// Shards carries the per-shard lifecycle block on a sharded server
	// (absent on a flat one).
	Shards []ShardInfo `json:"shards,omitempty"`
}

// ShardInfo is one shard's entry in the Stats per-shard block: its key
// range on the split dimension and an independent lifecycle snapshot.
type ShardInfo struct {
	// Shard is the shard's index in split order; Lo and Hi its inclusive
	// key bounds on the split dimension.
	Shard int   `json:"shard"`
	Lo    int64 `json:"lo"`
	Hi    int64 `json:"hi"`
	// Rows is the shard's live row count; Pending its unmerged insert-log
	// rows.
	Rows    int `json:"rows"`
	Pending int `json:"pending"`
	// Epoch counts the shard's generation swaps; Relearns and Merges its
	// completed background rebuilds; Queries the queries it has served.
	Epoch    int64 `json:"epoch"`
	Relearns int64 `json:"relearns"`
	Merges   int64 `json:"merges"`
	Queries  int64 `json:"queries"`
}

// --- helpers ---

// errorBody is the JSON error envelope every non-2xx response carries.
type errorBody struct {
	Error string `json:"error"`
}

func writeError(w http.ResponseWriter, code int, msg string) {
	writeJSON2(w, code, errorBody{Error: msg})
}

func writeJSON(w http.ResponseWriter, v any) { writeJSON2(w, http.StatusOK, v) }

func writeJSON2(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}
