package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	flood "flood"
	"flood/internal/dataset"
	"flood/internal/workload"
)

// rawFixture builds a small adaptive index over the raw sales dataset (no
// typed schema) and mounts a server over it.
func rawFixture(t *testing.T, cfg *Config) (*Server, *httptest.Server) {
	t.Helper()
	ds := dataset.Sales(4000, 11)
	queries := workload.Standard(ds, 20, 12)
	idx, err := flood.Build(ds.Table, queries, &flood.Options{CalibrationLayouts: 3, GDSteps: 5, Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	a := flood.NewAdaptiveIndex(idx, &flood.AdaptiveConfig{
		DriftFactor: 1e9,
		Build:       &flood.Options{CalibrationLayouts: 3, GDSteps: 5, Seed: 14},
	})
	s := New(a, cfg)
	hs := httptest.NewServer(s.Handler())
	t.Cleanup(func() { hs.Close(); s.Close() })
	return s, hs
}

// typedFixture builds a typed city/fare/dist table so projections and typed
// literals run through the server.
func typedFixture(t *testing.T, cfg *Config) (*Server, *httptest.Server, *flood.Schema) {
	t.Helper()
	cities := []string{"austin", "boston", "chicago", "nyc", "seattle"}
	n := 2000
	var city []string
	var fare []float64
	var dist []int64
	for i := 0; i < n; i++ {
		city = append(city, cities[i%len(cities)])
		fare = append(fare, float64(i%5000)/100)
		dist = append(dist, int64(i%300))
	}
	s := flood.NewSchema().String("city").Float64("fare", 2).Int64("dist")
	b := s.NewTableBuilder()
	if err := b.SetStringColumn("city", city); err != nil {
		t.Fatal(err)
	}
	if err := b.SetFloat64Column("fare", fare); err != nil {
		t.Fatal(err)
	}
	if err := b.SetInt64Column("dist", dist); err != nil {
		t.Fatal(err)
	}
	tbl, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	queries := []flood.Query{
		flood.NewQuery(3).WithRange(2, 10, 100),
		flood.NewQuery(3).WithRange(1, 100, 2000),
	}
	idx, err := flood.Build(tbl, queries, &flood.Options{CalibrationLayouts: 3, GDSteps: 5, Seed: 17, Schema: s})
	if err != nil {
		t.Fatal(err)
	}
	a := flood.NewAdaptiveIndex(idx, &flood.AdaptiveConfig{
		DriftFactor: 1e9,
		Build:       &flood.Options{CalibrationLayouts: 3, GDSteps: 5, Seed: 18},
	})
	srv := New(a, cfg)
	hs := httptest.NewServer(srv.Handler())
	t.Cleanup(func() { hs.Close(); srv.Close() })
	return srv, hs, s
}

// shardedFixture mounts a server over a 4-shard typed index split on the
// dist column, exercising the fan-out store path end to end.
func shardedFixture(t *testing.T, cfg *Config) (*Server, *httptest.Server, *flood.ShardedIndex) {
	t.Helper()
	cities := []string{"austin", "boston", "chicago", "nyc", "seattle"}
	n := 2000
	var city []string
	var fare []float64
	var dist []int64
	for i := 0; i < n; i++ {
		city = append(city, cities[i%len(cities)])
		fare = append(fare, float64(i%5000)/100)
		dist = append(dist, int64(i%300))
	}
	s := flood.NewSchema().String("city").Float64("fare", 2).Int64("dist")
	b := s.NewTableBuilder()
	if err := b.SetStringColumn("city", city); err != nil {
		t.Fatal(err)
	}
	if err := b.SetFloat64Column("fare", fare); err != nil {
		t.Fatal(err)
	}
	if err := b.SetInt64Column("dist", dist); err != nil {
		t.Fatal(err)
	}
	tbl, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	queries := []flood.Query{
		flood.NewQuery(3).WithRange(2, 10, 100),
		flood.NewQuery(3).WithRange(1, 100, 2000),
	}
	sh, err := flood.NewSharded(tbl, queries, &flood.ShardedOptions{
		Shards:   4,
		Dim:      2, // dist
		Build:    &flood.Options{CalibrationLayouts: 3, GDSteps: 5, Seed: 19, Schema: s},
		Adaptive: &flood.AdaptiveConfig{DriftFactor: 1e9},
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := NewSharded(sh, cfg)
	hs := httptest.NewServer(srv.Handler())
	t.Cleanup(func() { hs.Close(); srv.Close() })
	return srv, hs, sh
}

func postQuery(t *testing.T, url, sql string) (QueryResponse, int) {
	t.Helper()
	body, _ := json.Marshal(QueryRequest{SQL: sql})
	resp, err := http.Post(url+"/query", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out QueryResponse
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
	}
	return out, resp.StatusCode
}

func TestServerAggSelectMutate(t *testing.T) {
	srv, hs, _ := typedFixture(t, nil)
	url := hs.URL

	// Aggregate with typed decode: SUM over the scaled fare column returns
	// the scaled integer in Value and the decoded float in Typed.
	r, code := postQuery(t, url, "SELECT COUNT(*) FROM t WHERE city = 'boston'")
	if code != http.StatusOK || r.Kind != "agg" || r.Value != 400 {
		t.Fatalf("COUNT boston = %+v (status %d), want 400", r, code)
	}
	r, _ = postQuery(t, url, "SELECT MIN(fare) FROM t WHERE dist BETWEEN 0 AND 10")
	if f, ok := r.Typed.(float64); !ok || f < 0 {
		t.Fatalf("MIN(fare).Typed = %#v, want decoded float", r.Typed)
	}

	// Projection with a LIMIT.
	r, code = postQuery(t, url, "SELECT city, fare FROM t WHERE dist < 50 LIMIT 7")
	if code != http.StatusOK || r.Kind != "rows" || len(r.Rows) != 7 || len(r.Columns) != 2 {
		t.Fatalf("SELECT rows = %+v (status %d), want 7 rows x 2 cols", r, code)
	}
	if _, ok := r.Rows[0][0].(string); !ok {
		t.Fatalf("projected city value = %#v, want string", r.Rows[0][0])
	}

	// SQL INSERT, then DELETE, through /query; counts must track.
	r, code = postQuery(t, url, "INSERT INTO t VALUES ('boston', 1.25, 299)")
	if code != http.StatusOK || r.Kind != "exec" || r.Affected != 1 {
		t.Fatalf("INSERT = %+v (status %d)", r, code)
	}
	r, _ = postQuery(t, url, "SELECT COUNT(*) FROM t WHERE city = 'boston'")
	if r.Value != 401 {
		t.Fatalf("COUNT after INSERT = %d, want 401", r.Value)
	}
	r, code = postQuery(t, url, "DELETE FROM t WHERE city = 'boston' AND dist = 299")
	if code != http.StatusOK || r.Affected < 1 {
		t.Fatalf("DELETE = %+v (status %d)", r, code)
	}
	r, _ = postQuery(t, url, "SELECT COUNT(*) FROM t WHERE city = 'boston'")
	if r.Value != 400 {
		t.Fatalf("COUNT after DELETE = %d, want 400", r.Value)
	}

	// Parse errors surface as 400 with the positioned message.
	if _, code = postQuery(t, url, "SELECT FROG(*) FROM t"); code != http.StatusBadRequest {
		t.Fatalf("bad sql status = %d, want 400", code)
	}

	st := srv.Stats()
	if st.AggQueries < 4 || st.Selects != 1 || st.Mutations != 2 {
		t.Fatalf("stats dispatch counts = %+v", st)
	}
}

func TestServerSelectRowCap(t *testing.T) {
	_, hs, _ := typedFixture(t, &Config{MaxResultRows: 5})
	r, code := postQuery(t, hs.URL, "SELECT dist FROM t")
	if code != http.StatusOK || len(r.Rows) != 5 || !r.Truncated {
		t.Fatalf("capped SELECT = %d rows truncated=%v (status %d), want 5/true", len(r.Rows), r.Truncated, code)
	}
	// An explicit LIMIT under the cap is not truncation.
	r, _ = postQuery(t, hs.URL, "SELECT dist FROM t LIMIT 3")
	if len(r.Rows) != 3 || r.Truncated {
		t.Fatalf("LIMIT 3 = %d rows truncated=%v, want 3/false", len(r.Rows), r.Truncated)
	}
}

func TestServerInsertEndpoint(t *testing.T) {
	srv, hs, _ := typedFixture(t, nil)
	body := `{"rows": [["nyc", 12.5, 42], ["austin", 0.75, 7]]}`
	resp, err := http.Post(hs.URL+"/insert", "application/json", bytes.NewReader([]byte(body)))
	if err != nil {
		t.Fatal(err)
	}
	var ir InsertResponse
	json.NewDecoder(resp.Body).Decode(&ir)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || ir.Inserted != 2 {
		t.Fatalf("insert = %+v (status %d), want 2 rows", ir, resp.StatusCode)
	}
	r, _ := postQuery(t, hs.URL, "SELECT COUNT(*) FROM t WHERE city = 'nyc' AND dist = 42")
	if r.Value != 1 {
		t.Fatalf("COUNT inserted row = %d, want 1", r.Value)
	}
	// A row with a bad arity is rejected and reported with its index.
	resp, err = http.Post(hs.URL+"/insert", "application/json", bytes.NewReader([]byte(`{"rows": [["nyc", 1.25]]}`)))
	if err != nil {
		t.Fatal(err)
	}
	json.NewDecoder(resp.Body).Decode(&ir)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad-arity insert status = %d, want 400", resp.StatusCode)
	}
	if srv.Stats().InsertedRows != 2 {
		t.Fatalf("InsertedRows = %d, want 2", srv.Stats().InsertedRows)
	}
}

func TestServerSchemaEndpoint(t *testing.T) {
	_, hs, _ := typedFixture(t, nil)
	resp, err := http.Get(hs.URL + "/schema")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var sr SchemaResponse
	if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
		t.Fatal(err)
	}
	if !sr.Typed || sr.Rows != 2000 || len(sr.Columns) != 3 {
		t.Fatalf("schema = %+v", sr)
	}
	if sr.Columns[2].Name != "dist" || sr.Columns[2].Kind != "int64" ||
		sr.Columns[2].Min != 0 || sr.Columns[2].Max != 299 {
		t.Fatalf("dist column info = %+v, want [0,299] int64", sr.Columns[2])
	}
}

// TestServerSharded runs the whole serving surface — aggregates,
// projections, SQL mutations, /insert, /schema, /stats — against a 4-shard
// store, pinning that the Store generalization lost nothing and that the
// per-shard stats block is populated.
func TestServerSharded(t *testing.T) {
	srv, hs, sh := shardedFixture(t, nil)
	url := hs.URL

	// Fan-out aggregate (city isn't the split dim, so every shard scans).
	r, code := postQuery(t, url, "SELECT COUNT(*) FROM t WHERE city = 'boston'")
	if code != http.StatusOK || r.Value != 400 {
		t.Fatalf("COUNT boston = %+v (status %d), want 400", r, code)
	}
	// Pruned aggregate: dist < 50 lands inside the first shard's range.
	r, _ = postQuery(t, url, "SELECT COUNT(*) FROM t WHERE dist < 50")
	if r.Value != 350 {
		t.Fatalf("COUNT dist<50 = %d, want 350", r.Value)
	}
	// Projection with LIMIT through the shared fan-out budget.
	r, code = postQuery(t, url, "SELECT city, fare FROM t WHERE dist < 50 LIMIT 7")
	if code != http.StatusOK || r.Kind != "rows" || len(r.Rows) != 7 {
		t.Fatalf("SELECT rows = %+v (status %d), want 7 rows", r, code)
	}
	if _, ok := r.Rows[0][0].(string); !ok {
		t.Fatalf("projected city value = %#v, want string", r.Rows[0][0])
	}

	// SQL INSERT routes by the split point; DELETE fans out.
	r, code = postQuery(t, url, "INSERT INTO t VALUES ('boston', 1.25, 299)")
	if code != http.StatusOK || r.Affected != 1 {
		t.Fatalf("INSERT = %+v (status %d)", r, code)
	}
	r, _ = postQuery(t, url, "SELECT COUNT(*) FROM t WHERE city = 'boston'")
	if r.Value != 401 {
		t.Fatalf("COUNT after INSERT = %d, want 401", r.Value)
	}
	r, code = postQuery(t, url, "DELETE FROM t WHERE city = 'boston' AND dist = 299")
	if code != http.StatusOK || r.Affected < 1 {
		t.Fatalf("DELETE = %+v (status %d)", r, code)
	}

	// /insert rides the same mutator.
	body := `{"rows": [["nyc", 12.5, 42]]}`
	resp, err := http.Post(url+"/insert", "application/json", bytes.NewReader([]byte(body)))
	if err != nil {
		t.Fatal(err)
	}
	var ir InsertResponse
	json.NewDecoder(resp.Body).Decode(&ir)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || ir.Inserted != 1 {
		t.Fatalf("insert = %+v (status %d)", ir, resp.StatusCode)
	}

	// /schema folds row counts and column bounds across shards.
	resp, err = http.Get(url + "/schema")
	if err != nil {
		t.Fatal(err)
	}
	var sr SchemaResponse
	if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if !sr.Typed || sr.Rows < 2000 || len(sr.Columns) != 3 {
		t.Fatalf("schema = %+v", sr)
	}
	if sr.Columns[2].Min != 0 || sr.Columns[2].Max != 299 {
		t.Fatalf("dist bounds = [%d,%d], want [0,299] folded across shards", sr.Columns[2].Min, sr.Columns[2].Max)
	}

	// /stats carries the per-shard block with routed query counts.
	st := srv.Stats()
	if len(st.Shards) != sh.NumShards() {
		t.Fatalf("stats shards = %d entries, want %d", len(st.Shards), sh.NumShards())
	}
	var rows, queries int64
	for i, si := range st.Shards {
		if si.Shard != i {
			t.Fatalf("shard block out of order: %+v", si)
		}
		rows += int64(si.Rows)
		queries += si.Queries
	}
	if int(rows) != sh.LiveRows() || rows < 2000 {
		t.Fatalf("per-shard rows sum = %d, want %d", rows, sh.LiveRows())
	}
	if queries == 0 {
		t.Fatal("no per-shard queries recorded")
	}
	if st.BaseRows != int(rows) {
		t.Fatalf("BaseRows = %d, want per-shard sum %d", st.BaseRows, rows)
	}
}

// TestServerShardedCache pins that the epoch-keyed result cache stays
// correct over a sharded store: a mutation in one shard bumps the summed
// epoch version, so no stale aggregate is ever served.
func TestServerShardedCache(t *testing.T) {
	srv, hs, _ := shardedFixture(t, &Config{CacheEntries: 64})
	const q = "SELECT COUNT(*) FROM t WHERE dist < 50"
	r, _ := postQuery(t, hs.URL, q)
	first := r.Value
	r, _ = postQuery(t, hs.URL, q)
	if !r.Cached || r.Value != first {
		t.Fatalf("repeat query = %+v, want cached %d", r, first)
	}
	if _, code := postQuery(t, hs.URL, "INSERT INTO t VALUES ('nyc', 2.5, 10)"); code != http.StatusOK {
		t.Fatalf("insert status = %d", code)
	}
	r, _ = postQuery(t, hs.URL, q)
	if r.Cached || r.Value != first+1 {
		t.Fatalf("post-insert query = %+v, want uncached %d", r, first+1)
	}
	if srv.Stats().CacheHits != 1 {
		t.Fatalf("cache hits = %d, want 1", srv.Stats().CacheHits)
	}
}

// TestServerBatchMultiplex is the acceptance check that concurrent clients
// are multiplexed onto ExecuteBatchContext: with a generous gather window,
// a burst of distinct aggregates must produce batches with more than one
// member, visible both in server stats and per-response batch_size.
func TestServerBatchMultiplex(t *testing.T) {
	srv, hs := rawFixture(t, &Config{BatchWindow: 20 * time.Millisecond, CacheEntries: -1})
	const clients = 24
	var wg sync.WaitGroup
	var mu sync.Mutex
	maxSeen := 0
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// Distinct predicates so no request is a cache hit.
			r, code := postQuery(t, hs.URL, fmt.Sprintf(
				"SELECT COUNT(*) FROM sales WHERE quantity >= %d", i%9))
			if code != http.StatusOK {
				t.Errorf("client %d: status %d", i, code)
				return
			}
			mu.Lock()
			if r.BatchSize > maxSeen {
				maxSeen = r.BatchSize
			}
			mu.Unlock()
		}(i)
	}
	wg.Wait()
	st := srv.Stats()
	if st.MaxBatch < 2 || st.MultiBatches == 0 {
		t.Fatalf("no multiplexing observed: stats = %+v", st)
	}
	if maxSeen < 2 {
		t.Fatalf("no response reported batch_size > 1 (max %d)", maxSeen)
	}
	if st.BatchedQueries != int64(clients) {
		t.Fatalf("batched queries = %d, want %d", st.BatchedQueries, clients)
	}
}

// TestServerAdmissionShed pins the shedding contract: with the in-flight
// semaphore full and no queue wait allowed, a request is refused with 429
// and counted, without touching the index.
func TestServerAdmissionShed(t *testing.T) {
	srv, hs := rawFixture(t, &Config{MaxInFlight: 1, QueueWait: -1})
	srv.sem <- struct{}{} // occupy the only slot
	_, code := postQuery(t, hs.URL, "SELECT COUNT(*) FROM sales")
	if code != http.StatusTooManyRequests {
		t.Fatalf("status with full semaphore = %d, want 429", code)
	}
	st := srv.Stats()
	if st.Shed != 1 || st.AggQueries != 0 {
		t.Fatalf("shed accounting = %+v, want Shed=1 and no execution", st)
	}
	<-srv.sem
	if _, code = postQuery(t, hs.URL, "SELECT COUNT(*) FROM sales"); code != http.StatusOK {
		t.Fatalf("status after release = %d, want 200", code)
	}
}

// TestServerAdmissionQueueWait covers the queue path: a held slot released
// shortly after a request arrives lets the waiter through, and the wait is
// accounted.
func TestServerAdmissionQueueWait(t *testing.T) {
	srv, hs := rawFixture(t, &Config{MaxInFlight: 1, QueueWait: time.Second})
	srv.sem <- struct{}{}
	go func() {
		time.Sleep(20 * time.Millisecond)
		<-srv.sem
	}()
	r, code := postQuery(t, hs.URL, "SELECT COUNT(*) FROM sales")
	if code != http.StatusOK {
		t.Fatalf("queued request status = %d, want 200", code)
	}
	if r.QueueMicros <= 0 {
		t.Fatalf("queued request reported no queue wait: %+v", r)
	}
	st := srv.Stats()
	if st.QueuedRequests != 1 || st.QueueWaitMicros <= 0 {
		t.Fatalf("queue accounting = %+v", st)
	}
}

// TestServerRequestDeadline pins the 504 path: a deadline that expires
// before the batch fires answers ErrCanceled without scanning.
func TestServerRequestDeadline(t *testing.T) {
	// A gather window much longer than the request timeout guarantees the
	// deadline passes while the job waits in the collector.
	_, hs := rawFixture(t, &Config{BatchWindow: 300 * time.Millisecond, RequestTimeout: 20 * time.Millisecond})
	body, _ := json.Marshal(QueryRequest{SQL: "SELECT COUNT(*) FROM sales", TimeoutMillis: 10})
	resp, err := http.Post(hs.URL+"/query", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("expired-deadline status = %d, want 504", resp.StatusCode)
	}
}

// TestBatchCollectorOverload pins submit's non-blocking contract without
// the gather loop draining the intake queue.
func TestBatchCollectorOverload(t *testing.T) {
	c := &collector{jobs: make(chan *aggJob, 1)}
	if err := c.submit(&aggJob{}); err != nil {
		t.Fatal(err)
	}
	if err := c.submit(&aggJob{}); err != errOverloaded {
		t.Fatalf("second submit = %v, want errOverloaded", err)
	}
}

// TestServerCloseRefusesRequests pins the shutdown barrier: after Close,
// requests get 503 and the underlying store is released exactly once.
func TestServerCloseRefusesRequests(t *testing.T) {
	srv, hs := rawFixture(t, nil)
	if _, code := postQuery(t, hs.URL, "SELECT COUNT(*) FROM sales"); code != http.StatusOK {
		t.Fatalf("pre-close status = %d", code)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	_, code := postQuery(t, hs.URL, "SELECT COUNT(*) FROM sales")
	if code != http.StatusServiceUnavailable {
		t.Fatalf("post-close status = %d, want 503", code)
	}
	if err := srv.Close(); err != nil { // idempotent
		t.Fatal(err)
	}
}
