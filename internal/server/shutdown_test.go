package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	flood "flood"
	"flood/internal/dataset"
	"flood/internal/workload"
)

// TestServerShutdownKeepsAckedWrites is the satellite shutdown test: writes
// acknowledged by a durable server before a SIGTERM-style shutdown
// (http.Server stops accepting, then Server.Close drains batches,
// checkpoints, and closes) must all be present when the directory is
// reopened — including writes racing the shutdown, where "acked" is
// decided by the HTTP 200.
func TestServerShutdownKeepsAckedWrites(t *testing.T) {
	dir := t.TempDir()
	ds := dataset.Sales(3000, 21)
	queries := workload.Standard(ds, 20, 22)
	idx, err := flood.Build(ds.Table, queries, &flood.Options{CalibrationLayouts: 3, GDSteps: 5, Seed: 23})
	if err != nil {
		t.Fatal(err)
	}
	dur, err := flood.CreateDurable(dir, idx, &flood.DurableOptions{
		Adaptive: &flood.AdaptiveConfig{DriftFactor: 1e9, Build: &flood.Options{CalibrationLayouts: 3, GDSteps: 5, Seed: 24}},
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := NewDurable(dur, nil)
	hs := httptest.NewServer(srv.Handler())

	dateCol := ds.ColumnIndex("date")
	row := func(marker int64) []int64 {
		r := make([]int64, ds.Table.NumCols())
		copy(r, []int64{1, 2, 3, 4, 5, 6}[:len(r)])
		r[dateCol] = 9000 + marker
		return r
	}
	insert := func(marker int64) bool {
		var rows [][]json.RawMessage
		var vals []json.RawMessage
		for _, v := range row(marker) {
			vals = append(vals, json.RawMessage(fmt.Sprint(v)))
		}
		rows = append(rows, vals)
		body, _ := json.Marshal(InsertRequest{Rows: rows})
		resp, err := http.Post(hs.URL+"/insert", "application/json", bytes.NewReader(body))
		if err != nil {
			return false
		}
		defer resp.Body.Close()
		return resp.StatusCode == http.StatusOK
	}

	// Phase 1: a settled prefix of acked writes.
	const settled = 20
	for i := int64(0); i < settled; i++ {
		if !insert(i) {
			t.Fatalf("settled insert %d not acked", i)
		}
	}

	// Phase 2: writers racing the shutdown. Every insert that returns 200
	// is recorded as acked; the shutdown starts while they run.
	var mu sync.Mutex
	acked := map[int64]bool{}
	var wg sync.WaitGroup
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := int64(0); i < 40; i++ {
				marker := settled + int64(w)*1000 + i
				if insert(marker) {
					mu.Lock()
					acked[marker] = true
					mu.Unlock()
				}
			}
		}(w)
	}
	// SIGTERM ordering: stop accepting (httptest Close waits for in-flight
	// handlers), then drain + checkpoint + close the store.
	hs.Close()
	wg.Wait()
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}

	reopened, rep, err := flood.OpenDurable(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer reopened.Close()
	if len(rep.Warnings) > 0 {
		t.Fatalf("recovery warnings: %+v", rep)
	}
	count := func(marker int64) int64 {
		q := flood.NewQuery(ds.Table.NumCols()).WithRange(dateCol, 9000+marker, 9000+marker)
		agg := flood.NewCount()
		reopened.Execute(q, agg)
		return agg.Result()
	}
	for i := int64(0); i < settled; i++ {
		if count(i) != 1 {
			t.Fatalf("settled acked write %d lost across shutdown", i)
		}
	}
	for marker := range acked {
		if count(marker) != 1 {
			t.Fatalf("racing acked write %d lost across shutdown", marker)
		}
	}
}
