package shard

import (
	"bytes"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"flood/internal/wire"
)

// ManifestName is the manifest's filename inside a sharded store's root
// directory.
const ManifestName = "manifest.flood"

// manifestVersion tags the manifest format in the shared wire header. It is
// deliberately outside the snapshot version range so a manifest handed to
// the snapshot loader (or vice versa) fails fast with ErrVersion.
const manifestVersion = 101

// Manifest is the durable description of a sharded store's partitioning:
// the split dimension, the split points, and the per-shard subdirectory
// names, in shard order. It is written atomically and checksummed; recovery
// reads it first, then opens each shard's durable directory independently.
type Manifest struct {
	// Dim is the split dimension (physical column index).
	Dim int
	// Splits are the strictly increasing split points; len(Splits)+1 shards.
	Splits []int64
	// ShardDirs are the shard subdirectory names relative to the root, in
	// shard order.
	ShardDirs []string
}

// NumShards returns the shard count the manifest describes.
func (m *Manifest) NumShards() int { return len(m.Splits) + 1 }

// Validate checks the manifest's internal consistency: increasing splits
// and one directory per shard.
func (m *Manifest) Validate() error {
	if err := Validate(m.Splits); err != nil {
		return err
	}
	if len(m.ShardDirs) != m.NumShards() {
		return fmt.Errorf("shard: manifest has %d dirs for %d shards", len(m.ShardDirs), m.NumShards())
	}
	for i, d := range m.ShardDirs {
		if d == "" || d != filepath.Base(d) {
			return fmt.Errorf("shard: manifest dir %d %q is not a bare subdirectory name", i, d)
		}
	}
	return nil
}

// Router builds the routing table the manifest describes.
func (m *Manifest) Router() (*Router, error) { return NewRouter(m.Dim, m.Splits) }

// WriteManifest atomically writes the manifest into dir: the encoded,
// checksummed document lands in a temp file that is fsynced and renamed
// over ManifestName, then the directory is synced so the rename survives a
// crash. A reader therefore sees either the old manifest or the new one,
// never a torn write.
func WriteManifest(dir string, m *Manifest) error {
	if err := m.Validate(); err != nil {
		return err
	}
	var buf bytes.Buffer
	if err := wire.WriteHeader(&buf, manifestVersion, 1); err != nil {
		return err
	}
	sw := wire.NewSectionWriter(&buf)
	sw.Section("shrd", func(w *wire.Writer) {
		w.Int(m.Dim)
		w.I64s(m.Splits)
		w.Strs(m.ShardDirs)
	})
	if err := sw.Err(); err != nil {
		return err
	}
	path := filepath.Join(dir, ManifestName)
	tmp, err := os.CreateTemp(dir, ".manifest-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(buf.Bytes()); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return err
	}
	return syncDir(dir)
}

// ReadManifest reads and validates dir's manifest.
func ReadManifest(dir string) (*Manifest, error) {
	f, err := os.Open(filepath.Join(dir, ManifestName))
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var h [wire.HeaderSize]byte
	if _, err := io.ReadFull(f, h[:]); err != nil {
		return nil, fmt.Errorf("shard manifest header: %w", wire.ErrTruncated)
	}
	sections, err := wire.ParseHeader(h[:], manifestVersion)
	if err != nil {
		return nil, fmt.Errorf("shard manifest: %w", err)
	}
	sr := wire.NewSectionReader(f, sections)
	var m *Manifest
	for {
		tag, payload, err := sr.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("shard manifest: %w", err)
		}
		if tag != "shrd" {
			continue // unknown section: forward compatibility
		}
		r := wire.NewReaderBytes(payload)
		mm := &Manifest{Dim: r.Int(), Splits: r.I64s(), ShardDirs: r.Strs()}
		if err := r.Err(); err != nil {
			return nil, fmt.Errorf("shard manifest: %w", err)
		}
		m = mm
	}
	if m == nil {
		return nil, fmt.Errorf("shard manifest: missing shrd section: %w", wire.ErrTruncated)
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return m, nil
}

// syncDir fsyncs a directory so a just-renamed file's entry is durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}
