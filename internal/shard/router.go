package shard

import (
	"math"
	"sort"
)

// Router maps split-dimension values to shard indexes and query ranges to
// shard intervals. It is immutable after construction and safe for
// concurrent use. Shard i owns the half-open value interval
// [splits[i-1], splits[i]); the first shard is unbounded below and the
// last unbounded above, so every int64 routes somewhere.
type Router struct {
	dim    int
	splits []int64
}

// NewRouter builds a router over strictly increasing split points on the
// given dimension. An empty split list yields a single-shard router.
func NewRouter(dim int, splits []int64) (*Router, error) {
	if err := Validate(splits); err != nil {
		return nil, err
	}
	return &Router{dim: dim, splits: append([]int64(nil), splits...)}, nil
}

// Dim returns the split dimension (a physical column index).
func (r *Router) Dim() int { return r.dim }

// Splits returns the split points; callers must not modify the slice.
func (r *Router) Splits() []int64 { return r.splits }

// NumShards returns the shard count: one more than the split count.
func (r *Router) NumShards() int { return len(r.splits) + 1 }

// Shard returns the shard owning value v: the number of split points <= v.
// Binary search keeps routing O(log k) and allocation-free.
func (r *Router) Shard(v int64) int {
	// sort.Search over "v < splits[i]" finds the first split strictly above
	// v, which is exactly the owning shard's index.
	return sort.Search(len(r.splits), func(i int) bool { return v < r.splits[i] })
}

// ShardRange returns the inclusive shard interval [first, last] overlapping
// the value range [lo, hi]. Callers pass the query's range on the split
// dimension; shards outside the interval cannot contain matching rows and
// are pruned from the fan-out.
func (r *Router) ShardRange(lo, hi int64) (first, last int) {
	return r.Shard(lo), r.Shard(hi)
}

// Bounds returns shard i's inclusive value bounds. The first shard's lower
// bound is math.MinInt64 and the last shard's upper bound math.MaxInt64.
func (r *Router) Bounds(i int) (lo, hi int64) {
	lo, hi = math.MinInt64, math.MaxInt64
	if i > 0 {
		lo = r.splits[i-1]
	}
	if i < len(r.splits) {
		hi = r.splits[i] - 1
	}
	return lo, hi
}
