package shard

import (
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"flood/internal/query"
)

func TestShardRouterBasics(t *testing.T) {
	r, err := NewRouter(2, []int64{10, 20, 30})
	if err != nil {
		t.Fatal(err)
	}
	if got := r.NumShards(); got != 4 {
		t.Fatalf("NumShards = %d, want 4", got)
	}
	if got := r.Dim(); got != 2 {
		t.Fatalf("Dim = %d, want 2", got)
	}
	cases := []struct {
		v    int64
		want int
	}{
		{math.MinInt64, 0}, {9, 0}, {10, 1}, {19, 1}, {20, 2}, {29, 2}, {30, 3}, {math.MaxInt64, 3},
	}
	for _, c := range cases {
		if got := r.Shard(c.v); got != c.want {
			t.Errorf("Shard(%d) = %d, want %d", c.v, got, c.want)
		}
	}
}

func TestShardRouterBounds(t *testing.T) {
	r, err := NewRouter(0, []int64{10, 20})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < r.NumShards(); i++ {
		lo, hi := r.Bounds(i)
		if got := r.Shard(lo); got != i {
			t.Errorf("shard %d lower bound %d routes to %d", i, lo, got)
		}
		if got := r.Shard(hi); got != i {
			t.Errorf("shard %d upper bound %d routes to %d", i, hi, got)
		}
	}
	if lo, _ := r.Bounds(0); lo != math.MinInt64 {
		t.Errorf("first shard lower bound = %d, want MinInt64", lo)
	}
	if _, hi := r.Bounds(2); hi != math.MaxInt64 {
		t.Errorf("last shard upper bound = %d, want MaxInt64", hi)
	}
}

func TestShardRouterRangePruning(t *testing.T) {
	r, err := NewRouter(0, []int64{100, 200, 300})
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		lo, hi      int64
		first, last int
	}{
		{0, 50, 0, 0},                        // fully below the first split: one shard
		{150, 160, 1, 1},                     // contained in shard 1
		{50, 250, 0, 2},                      // spans three shards
		{300, 400, 3, 3},                     // last shard only
		{math.MinInt64, math.MaxInt64, 0, 3}, // unbounded: all shards
		{100, 199, 1, 1},                     // exactly one shard's interval
		{99, 100, 0, 1},                      // straddles a split point
	}
	for _, c := range cases {
		first, last := r.ShardRange(c.lo, c.hi)
		if first != c.first || last != c.last {
			t.Errorf("ShardRange(%d, %d) = [%d, %d], want [%d, %d]",
				c.lo, c.hi, first, last, c.first, c.last)
		}
	}
}

func TestShardRouterRejectsUnsortedSplits(t *testing.T) {
	if _, err := NewRouter(0, []int64{20, 10}); err == nil {
		t.Fatal("NewRouter accepted decreasing splits")
	}
	if _, err := NewRouter(0, []int64{10, 10}); err == nil {
		t.Fatal("NewRouter accepted duplicate splits")
	}
}

// TestShardSplitsBalanceSkew fits learned-CDF splits on a heavily skewed
// sample and checks every shard lands within 2x of the even share — the
// balance property naive equal-width range partitioning lacks.
func TestShardSplitsBalanceSkew(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const n, k = 200_000, 8
	vals := make([]int64, n)
	for i := range vals {
		// Exponential-ish skew: most mass near zero, long tail to ~1e6.
		vals[i] = int64(math.Exp(rng.Float64()*13.8)) - 1
	}
	splits := FitSplits(vals, k)
	r, err := NewRouter(0, splits)
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int, r.NumShards())
	for _, v := range vals {
		counts[r.Shard(v)]++
	}
	even := float64(n) / float64(r.NumShards())
	for i, c := range counts {
		if float64(c) > 2*even || float64(c) < even/2 {
			t.Errorf("shard %d holds %d rows, want within 2x of %.0f (counts %v)", i, c, even, counts)
		}
	}
}

func TestShardSplitsDegenerate(t *testing.T) {
	if s := FitSplits([]int64{5, 5, 5, 5}, 4); s != nil {
		t.Errorf("constant column produced splits %v, want none", s)
	}
	if s := FitSplits(nil, 4); s != nil {
		t.Errorf("empty column produced splits %v, want none", s)
	}
	if s := FitSplits([]int64{1, 2, 3}, 1); s != nil {
		t.Errorf("k=1 produced splits %v, want none", s)
	}
	// Two distinct values cannot support 8 shards; splits must still be
	// strictly increasing (shard count collapses instead of duplicating).
	s := FitSplits([]int64{0, 0, 0, 1, 1, 1}, 8)
	if err := Validate(s); err != nil {
		t.Fatal(err)
	}
	if len(s) > 1 {
		t.Errorf("two-value column produced %d splits, want <= 1", len(s))
	}
}

func TestShardPartitionRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	col := make([]int64, 10_000)
	for i := range col {
		col[i] = rng.Int63n(1000)
	}
	r, err := NewRouter(0, FitSplits(col, 4))
	if err != nil {
		t.Fatal(err)
	}
	parts := Partition(col, r)
	seen := make([]bool, len(col))
	total := 0
	for s, rows := range parts {
		total += len(rows)
		prev := -1
		for _, row := range rows {
			if seen[row] {
				t.Fatalf("row %d assigned twice", row)
			}
			seen[row] = true
			if row <= prev {
				t.Fatalf("shard %d rows not in row order: %d after %d", s, row, prev)
			}
			prev = row
			if got := r.Shard(col[row]); got != s {
				t.Fatalf("row %d (value %d) in shard %d, routes to %d", row, col[row], s, got)
			}
		}
	}
	if total != len(col) {
		t.Fatalf("partition covers %d rows, want %d", total, len(col))
	}
}

func TestShardChooseDim(t *testing.T) {
	q := func(dims ...int) query.Query {
		var qq query.Query
		qq.Ranges = make([]query.Range, 3)
		for _, d := range dims {
			qq.Ranges[d] = query.Range{Min: 0, Max: 10, Present: true}
		}
		return qq
	}
	queries := []query.Query{q(1), q(1, 2), q(1), q(0)}
	if got := ChooseDim(queries, 3); got != 1 {
		t.Fatalf("ChooseDim = %d, want 1", got)
	}
	if got := ChooseDim(nil, 3); got != 0 {
		t.Fatalf("ChooseDim(empty) = %d, want 0", got)
	}
}

func TestManifestRoundTrip(t *testing.T) {
	dir := t.TempDir()
	m := &Manifest{Dim: 1, Splits: []int64{-5, 100, 7000}, ShardDirs: []string{"shard-0000", "shard-0001", "shard-0002", "shard-0003"}}
	if err := WriteManifest(dir, m); err != nil {
		t.Fatal(err)
	}
	got, err := ReadManifest(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got.Dim != m.Dim {
		t.Errorf("Dim = %d, want %d", got.Dim, m.Dim)
	}
	if len(got.Splits) != len(m.Splits) || len(got.ShardDirs) != len(m.ShardDirs) {
		t.Fatalf("round trip lost fields: %+v", got)
	}
	for i := range m.Splits {
		if got.Splits[i] != m.Splits[i] {
			t.Errorf("Splits[%d] = %d, want %d", i, got.Splits[i], m.Splits[i])
		}
	}
	for i := range m.ShardDirs {
		if got.ShardDirs[i] != m.ShardDirs[i] {
			t.Errorf("ShardDirs[%d] = %q, want %q", i, got.ShardDirs[i], m.ShardDirs[i])
		}
	}
}

// TestManifestAtomicReplace overwrites an existing manifest and checks the
// new content wins — the checkpoint path rewrites the manifest in place.
func TestManifestAtomicReplace(t *testing.T) {
	dir := t.TempDir()
	old := &Manifest{Dim: 0, Splits: []int64{1}, ShardDirs: []string{"a", "b"}}
	if err := WriteManifest(dir, old); err != nil {
		t.Fatal(err)
	}
	next := &Manifest{Dim: 2, Splits: []int64{9, 99}, ShardDirs: []string{"a", "b", "c"}}
	if err := WriteManifest(dir, next); err != nil {
		t.Fatal(err)
	}
	got, err := ReadManifest(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got.Dim != 2 || len(got.Splits) != 2 {
		t.Fatalf("read back %+v, want the replacement", got)
	}
	// No temp litter left behind.
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		if e.Name() != ManifestName {
			t.Errorf("unexpected file %q after atomic replace", e.Name())
		}
	}
}

// TestManifestCorruptionDetected flips one byte anywhere in the manifest
// and requires ReadManifest to fail rather than return damaged splits.
func TestManifestCorruptionDetected(t *testing.T) {
	dir := t.TempDir()
	m := &Manifest{Dim: 1, Splits: []int64{10, 20}, ShardDirs: []string{"s0", "s1", "s2"}}
	if err := WriteManifest(dir, m); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, ManifestName)
	orig, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for off := 0; off < len(orig); off++ {
		bad := append([]byte(nil), orig...)
		bad[off] ^= 0x40
		if err := os.WriteFile(path, bad, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := ReadManifest(dir); err == nil {
			t.Fatalf("byte %d flip went undetected", off)
		}
	}
	// Truncations at every length must also fail.
	for n := 0; n < len(orig); n++ {
		if err := os.WriteFile(path, orig[:n], 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := ReadManifest(dir); err == nil {
			t.Fatalf("truncation to %d bytes went undetected", n)
		}
	}
}

func TestManifestValidate(t *testing.T) {
	bad := []*Manifest{
		{Dim: 0, Splits: []int64{2, 1}, ShardDirs: []string{"a", "b", "c"}},
		{Dim: 0, Splits: []int64{1}, ShardDirs: []string{"a"}},
		{Dim: 0, Splits: []int64{1}, ShardDirs: []string{"a", ""}},
		{Dim: 0, Splits: []int64{1}, ShardDirs: []string{"a", "x/y"}},
	}
	for i, m := range bad {
		if err := m.Validate(); err == nil {
			t.Errorf("case %d: invalid manifest %+v accepted", i, m)
		}
	}
}
