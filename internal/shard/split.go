// Package shard partitions a table across independent Flood indexes by
// range on one dimension. Split points are fitted from a learned CDF over a
// sample of the split column, so shards stay balanced under skewed data; a
// Router maps values and query ranges to shard indexes, and a checksummed
// Manifest persists the partitioning so a durable sharded store can be
// reopened. The root package's ShardedIndex builds on these pieces; this
// package holds only the pure partitioning machinery so it stays testable
// without an index in sight.
package shard

import (
	"fmt"
	"math"
	"sort"

	"flood/internal/query"
	"flood/internal/rmi"
)

// maxSplitSample caps how many values the CDF is trained on. Splits only
// need coarse quantiles; 1<<16 points bound fitting cost on huge tables
// while keeping quantile error far below one shard's width.
const maxSplitSample = 1 << 16

// splitLeaves is the leaf count of the CDF trained for split fitting —
// enough resolution for up to a few hundred shards.
const splitLeaves = 1024

// FitSplits fits k-way split points on values using a learned CDF: a
// monotone piecewise-linear CDF is trained on a sample, then inverted at
// the equal-mass quantiles i/k so each shard receives roughly the same row
// count even when the value distribution is heavily skewed. The returned
// splits are strictly increasing and define k' <= k shards (duplicate
// quantiles collapse when the column has too few distinct values): shard i
// holds values in [splits[i-1], splits[i]), with the first shard unbounded
// below and the last unbounded above.
func FitSplits(values []int64, k int) []int64 {
	if k <= 1 || len(values) == 0 {
		return nil
	}
	sample := sampleValues(values, maxSplitSample)
	lo, hi := sample[0], sample[0]
	for _, v := range sample {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	if lo == hi {
		return nil // degenerate column: one shard
	}
	cdf := rmi.TrainCDF(sample, splitLeaves)
	sorted := append([]int64(nil), sample...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	splits := make([]int64, 0, k-1)
	for i := 1; i < k; i++ {
		p := float64(i) / float64(k)
		s := invertCDF(cdf, lo, hi, p)
		// Model-error correction: the piecewise-linear CDF can misplace a
		// quantile on pathologically dense regions. If the split's empirical
		// rank in the sample is off by more than a quarter of a shard's
		// mass, snap it to the sample's exact quantile — the learned inverse
		// stays primary, the snap bounds worst-case imbalance.
		rank := float64(sort.Search(len(sorted), func(j int) bool { return sorted[j] >= s })) / float64(len(sorted))
		if math.Abs(rank-p) > 0.25/float64(k) {
			s = sorted[int(p*float64(len(sorted)))]
		}
		if len(splits) > 0 && s <= splits[len(splits)-1] {
			continue // duplicate quantile: collapse the empty shard
		}
		if s <= lo {
			continue // split below the data range would make an empty shard
		}
		splits = append(splits, s)
	}
	return splits
}

// invertCDF finds the smallest v in [lo, hi] with cdf.At(v) >= p by binary
// search; the CDF is monotone so the search is well defined.
func invertCDF(cdf *rmi.CDF, lo, hi int64, p float64) int64 {
	for lo < hi {
		mid := lo + (hi-lo)/2
		if cdf.At(mid) >= p {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}

// sampleValues returns at most max values drawn at a fixed stride — a
// deterministic systematic sample, adequate for quantile fitting and free
// of RNG state.
func sampleValues(values []int64, max int) []int64 {
	if len(values) <= max {
		return values
	}
	stride := (len(values) + max - 1) / max
	out := make([]int64, 0, max)
	for i := 0; i < len(values); i += stride {
		out = append(out, values[i])
	}
	return out
}

// ChooseDim picks the split dimension for a workload: the dimension
// filtered by the most training queries, ties broken toward the lower
// index. Splitting on the hottest dimension maximizes how often a query's
// predicate prunes shards. Returns 0 when the workload is empty.
func ChooseDim(queries []query.Query, numDims int) int {
	if numDims <= 0 {
		return 0
	}
	counts := make([]int, numDims)
	for _, q := range queries {
		for d, r := range q.Ranges {
			if r.Present && d < numDims {
				counts[d]++
			}
		}
	}
	best := 0
	for d, c := range counts {
		if c > counts[best] {
			best = d
		}
	}
	return best
}

// Partition assigns each row of the split column to its shard and returns
// the per-shard row index lists, in row order. The lists are dense
// permutations of [0, len(col)) and drive the per-shard table gather.
func Partition(col []int64, r *Router) [][]int {
	parts := make([][]int, r.NumShards())
	// Pre-size by an exact counting pass: one extra scan of an int64 slice
	// is cheaper than re-growing k slices through append.
	counts := make([]int, r.NumShards())
	for _, v := range col {
		counts[r.Shard(v)]++
	}
	for i := range parts {
		parts[i] = make([]int, 0, counts[i])
	}
	for row, v := range col {
		s := r.Shard(v)
		parts[s] = append(parts[s], row)
	}
	return parts
}

// Validate checks that splits are strictly increasing — the Router and
// Manifest invariant.
func Validate(splits []int64) error {
	if !sort.SliceIsSorted(splits, func(i, j int) bool { return splits[i] < splits[j] }) {
		return fmt.Errorf("shard: split points not strictly increasing: %v", splits)
	}
	for i := 1; i < len(splits); i++ {
		if splits[i] == splits[i-1] {
			return fmt.Errorf("shard: duplicate split point %d", splits[i])
		}
	}
	return nil
}
