// Package wal implements the append-only write-ahead log that makes inserts
// durable between snapshots. A log is a sequence of generation-numbered
// segment files; each segment carries a checksummed header and a stream of
// CRC-framed records. Appends group-commit: concurrent writers batch into a
// shared fsync, so sync-per-insert throughput scales with concurrency.
// Replay walks a segment's records and stops at the first invalid frame, so
// a torn tail yields exactly the prefix of acknowledged records — never a
// partially applied or corrupted record.
package wal

import (
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
	"time"

	"flood/internal/wire"
)

// Segment file format.
//
//	header: "FLODWAL1" | generation u64 | CRC32-C u32 (over magic+generation)
//	record: length u32 | CRC32-C u32 (over length+payload) | payload
//
// All integers little-endian. The record CRC covers the length field, so a
// flipped length byte cannot redirect the frame walk to plausible garbage.
const (
	segmentMagic = "FLODWAL1"
	// HeaderSize is the size of a segment header in bytes.
	HeaderSize = 20
	frameSize  = 8
	// MaxRecordLen bounds a record's declared payload length; larger values
	// are treated as corruption rather than allocation requests.
	MaxRecordLen = 1 << 30
)

// SyncPolicy controls when appended records are fsynced to stable storage.
type SyncPolicy int

// The sync policies, ordered from most to least durable.
const (
	// SyncAlways fsyncs before Append returns: an acknowledged insert
	// survives kill -9 and power loss. Concurrent appends share fsyncs
	// (group commit).
	SyncAlways SyncPolicy = iota
	// SyncInterval fsyncs on a background timer: a crash loses at most the
	// last interval's worth of acknowledged inserts.
	SyncInterval
	// SyncNone never fsyncs except on Sync and Close: the OS decides when
	// data reaches disk. Fastest; a crash may lose any unsynced suffix.
	SyncNone
)

// Options configures a segment's durability behavior.
type Options struct {
	// Policy selects when appends reach stable storage (default SyncAlways).
	Policy SyncPolicy
	// Interval is the flush period for SyncInterval (default 50ms).
	Interval time.Duration
}

// SegmentName returns the file name of the segment for a generation.
func SegmentName(gen uint64) string { return fmt.Sprintf("wal-%06d.log", gen) }

// ParseSegmentName extracts the generation from a segment file name; ok is
// false for non-segment names.
func ParseSegmentName(name string) (gen uint64, ok bool) {
	var g uint64
	if n, err := fmt.Sscanf(name, "wal-%d.log", &g); n != 1 || err != nil {
		return 0, false
	}
	// Round-trip to reject names with stray prefixes or suffixes Sscanf
	// tolerates.
	if SegmentName(g) != name {
		return 0, false
	}
	return g, true
}

// Log is an open segment accepting appends. Append, Sync, and Close are safe
// for concurrent use.
type Log struct {
	path string
	gen  uint64

	mu     sync.Mutex // serializes writes to f
	f      *os.File
	offset int64 // bytes written (not necessarily synced)

	sm      sync.Mutex // guards the group-commit state below
	synced  int64      // bytes known durable
	syncing bool       // an fsync is in flight
	syncErr error      // sticky: after an fsync fails the log is poisoned
	cond    *sync.Cond // broadcast when a sync round completes

	policy  SyncPolicy
	closed  chan struct{} // closes on Close; stops the interval flusher
	flushWG sync.WaitGroup
}

// Create creates a new segment file at path with the given generation,
// fsyncs the header and the containing directory, and returns the open log.
// The file must not already exist.
func Create(path string, gen uint64, opts Options) (*Log, error) {
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return nil, err
	}
	var h [HeaderSize]byte
	copy(h[:8], segmentMagic)
	binary.LittleEndian.PutUint64(h[8:], gen)
	binary.LittleEndian.PutUint32(h[16:], wire.Checksum(h[:16]))
	if _, err := f.Write(h[:]); err != nil {
		f.Close()
		os.Remove(path)
		return nil, err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(path)
		return nil, err
	}
	if err := syncDir(filepath.Dir(path)); err != nil {
		f.Close()
		return nil, err
	}
	l := &Log{
		path:   path,
		gen:    gen,
		f:      f,
		offset: HeaderSize,
		synced: HeaderSize,
		policy: opts.Policy,
		closed: make(chan struct{}),
	}
	l.cond = sync.NewCond(&l.sm)
	if opts.Policy == SyncInterval {
		iv := opts.Interval
		if iv <= 0 {
			iv = 50 * time.Millisecond
		}
		l.flushWG.Add(1)
		go l.flushLoop(iv)
	}
	return l, nil
}

// Path returns the segment's file path.
func (l *Log) Path() string { return l.path }

// Gen returns the segment's generation number.
func (l *Log) Gen() uint64 { return l.gen }

// Size returns the bytes appended so far, including the header.
func (l *Log) Size() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.offset
}

// Append writes one record and waits for the durability the sync policy
// promises. A record that Append returned nil for is "acknowledged": replay
// recovers every acknowledged record up to the sync guarantee of the policy
// in force.
func (l *Log) Append(payload []byte) error {
	target, err := l.AppendAsync(payload)
	if err != nil {
		return err
	}
	return l.WaitDurable(target)
}

// AppendAsync writes one record to the OS without waiting for durability and
// returns a token for WaitDurable. It exists so callers serializing appends
// under their own lock can move the fsync wait outside it: appends stay
// cheap and ordered, while concurrent WaitDurable calls group-commit.
func (l *Log) AppendAsync(payload []byte) (int64, error) {
	if int64(len(payload)) > MaxRecordLen {
		return 0, fmt.Errorf("wal: record of %d bytes exceeds limit", len(payload))
	}
	frame := make([]byte, frameSize+len(payload))
	binary.LittleEndian.PutUint32(frame, uint32(len(payload)))
	copy(frame[frameSize:], payload)
	crc := wire.Checksum(frame[:4])
	crc = wire.ChecksumUpdate(crc, payload)
	binary.LittleEndian.PutUint32(frame[4:], crc)

	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return 0, fmt.Errorf("wal: append to closed segment %s", l.path)
	}
	if _, err := l.f.Write(frame); err != nil {
		return 0, err
	}
	l.offset += int64(len(frame))
	return l.offset, nil
}

// WaitDurable blocks until the record AppendAsync returned target for is as
// durable as the sync policy promises: under SyncAlways it fsyncs (sharing
// rounds with concurrent waiters), under the other policies it returns
// immediately.
func (l *Log) WaitDurable(target int64) error {
	if l.policy != SyncAlways {
		return nil
	}
	return l.syncTo(target)
}

// Sync forces everything appended so far onto stable storage.
func (l *Log) Sync() error {
	l.mu.Lock()
	target := l.offset
	l.mu.Unlock()
	return l.syncTo(target)
}

// syncTo blocks until at least target bytes are durable, sharing fsyncs with
// concurrent callers: one leader fsyncs the file while followers whose
// target is covered by that round simply wait for its broadcast.
func (l *Log) syncTo(target int64) error {
	l.sm.Lock()
	defer l.sm.Unlock()
	for {
		if l.syncErr != nil {
			return l.syncErr
		}
		if l.synced >= target {
			return nil
		}
		if l.syncing {
			l.cond.Wait()
			continue
		}
		l.syncing = true
		l.mu.Lock()
		upto := l.offset
		f := l.f
		l.mu.Unlock()
		l.sm.Unlock()
		var err error
		if f == nil {
			err = fmt.Errorf("wal: sync of closed segment %s", l.path)
		} else {
			err = f.Sync()
		}
		l.sm.Lock()
		l.syncing = false
		if err != nil {
			l.syncErr = err
		} else if upto > l.synced {
			l.synced = upto
		}
		l.cond.Broadcast()
	}
}

// flushLoop periodically fsyncs under SyncInterval until Close.
func (l *Log) flushLoop(iv time.Duration) {
	defer l.flushWG.Done()
	t := time.NewTicker(iv)
	defer t.Stop()
	for {
		select {
		case <-l.closed:
			return
		case <-t.C:
			l.Sync() // error is sticky in syncErr; Close reports it
		}
	}
}

// Close fsyncs any unsynced suffix and closes the file. Further appends
// fail.
func (l *Log) Close() error {
	select {
	case <-l.closed:
	default:
		close(l.closed)
	}
	l.flushWG.Wait()
	syncErr := l.Sync()
	l.mu.Lock()
	f := l.f
	l.f = nil
	l.mu.Unlock()
	if f == nil {
		return syncErr
	}
	if err := f.Close(); syncErr == nil {
		return err
	}
	return syncErr
}

// ReplayResult describes what a Replay recovered from one segment.
type ReplayResult struct {
	// Gen is the generation recorded in the segment header (0 when the
	// header itself was damaged).
	Gen uint64
	// Records is the number of valid records applied.
	Records int
	// ValidSize is the byte offset of the end of the last valid record —
	// the size to truncate the file to when the tail is damaged.
	ValidSize int64
	// Damaged reports that the walk stopped at an invalid frame (torn
	// write, bit flip, or truncation) before the end of the file.
	Damaged bool
	// Err classifies the damage when Damaged is set, wrapping
	// wire.ErrTruncated or wire.ErrChecksum.
	Err error
}

// Replay reads a segment and calls apply for each valid record in order. It
// stops at the first invalid frame and reports it in the result rather than
// as an error: a damaged tail is an expected crash artifact, and the caller
// decides whether damage is tolerable (last segment) or fatal (earlier
// segments). An error from apply aborts the walk and is returned as-is. A
// damaged or truncated header yields Damaged with ValidSize 0 and no
// records.
func Replay(path string, apply func(payload []byte) error) (ReplayResult, error) {
	var res ReplayResult
	f, err := os.Open(path)
	if err != nil {
		return res, err
	}
	defer f.Close()

	var h [HeaderSize]byte
	if _, err := io.ReadFull(f, h[:]); err != nil {
		res.Damaged = true
		res.Err = fmt.Errorf("truncated segment header: %w", wire.ErrTruncated)
		return res, nil
	}
	if string(h[:8]) != segmentMagic || binary.LittleEndian.Uint32(h[16:]) != wire.Checksum(h[:16]) {
		res.Damaged = true
		res.Err = fmt.Errorf("corrupt segment header: %w", wire.ErrChecksum)
		return res, nil
	}
	res.Gen = binary.LittleEndian.Uint64(h[8:])
	res.ValidSize = HeaderSize

	var frame [frameSize]byte
	var payload []byte
	for {
		if _, err := io.ReadFull(f, frame[:]); err != nil {
			if err != io.EOF {
				res.Damaged = true
				res.Err = fmt.Errorf("truncated record frame: %w", wire.ErrTruncated)
			}
			return res, nil
		}
		length := binary.LittleEndian.Uint32(frame[:4])
		if int64(length) > MaxRecordLen {
			res.Damaged = true
			res.Err = fmt.Errorf("record declares %d bytes: %w", length, wire.ErrChecksum)
			return res, nil
		}
		if cap(payload) < int(length) {
			payload = make([]byte, length)
		}
		payload = payload[:length]
		if _, err := io.ReadFull(f, payload); err != nil {
			res.Damaged = true
			res.Err = fmt.Errorf("truncated record payload: %w", wire.ErrTruncated)
			return res, nil
		}
		crc := wire.Checksum(frame[:4])
		crc = wire.ChecksumUpdate(crc, payload)
		if crc != binary.LittleEndian.Uint32(frame[4:]) {
			res.Damaged = true
			res.Err = fmt.Errorf("record checksum mismatch: %w", wire.ErrChecksum)
			return res, nil
		}
		if err := apply(payload); err != nil {
			return res, err
		}
		res.Records++
		res.ValidSize += frameSize + int64(length)
	}
}

// TruncateTail cuts a segment file to size (the ValidSize of a damaged
// Replay) and fsyncs it, discarding the invalid tail so a future replay
// ends cleanly.
func TruncateTail(path string, size int64) error {
	f, err := os.OpenFile(path, os.O_WRONLY, 0)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := f.Truncate(size); err != nil {
		return err
	}
	return f.Sync()
}

// syncDir fsyncs a directory so a preceding create or rename in it is
// durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	// Directory fsync is unsupported on some filesystems; the open-and-sync
	// attempt is the best available effort there.
	d.Sync()
	return d.Close()
}
