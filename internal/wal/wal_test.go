package wal

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"flood/internal/faultfs"
)

func testRecords(n int) [][]byte {
	out := make([][]byte, n)
	for i := range out {
		out[i] = []byte(fmt.Sprintf("record-%04d-%s", i, string(rune('a'+i%26))))
	}
	return out
}

func writeSegment(t *testing.T, dir string, gen uint64, recs [][]byte, opts Options) string {
	t.Helper()
	path := filepath.Join(dir, SegmentName(gen))
	l, err := Create(path, gen, opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range recs {
		if err := l.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

func replayAll(t *testing.T, path string) (ReplayResult, [][]byte) {
	t.Helper()
	var got [][]byte
	res, err := Replay(path, func(p []byte) error {
		got = append(got, append([]byte(nil), p...))
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return res, got
}

func TestAppendReplayRoundtrip(t *testing.T) {
	recs := testRecords(100)
	path := writeSegment(t, t.TempDir(), 7, recs, Options{Policy: SyncNone})
	res, got := replayAll(t, path)
	if res.Damaged {
		t.Fatalf("clean segment reported damaged: %v", res.Err)
	}
	if res.Gen != 7 {
		t.Fatalf("gen = %d, want 7", res.Gen)
	}
	if res.Records != len(recs) {
		t.Fatalf("replayed %d records, want %d", res.Records, len(recs))
	}
	for i := range recs {
		if !bytes.Equal(got[i], recs[i]) {
			t.Fatalf("record %d changed across replay", i)
		}
	}
	fi, _ := os.Stat(path)
	if res.ValidSize != fi.Size() {
		t.Fatalf("ValidSize %d != file size %d", res.ValidSize, fi.Size())
	}
}

func TestSegmentNames(t *testing.T) {
	for _, g := range []uint64{0, 1, 42, 999999, 12345678} {
		got, ok := ParseSegmentName(SegmentName(g))
		if !ok || got != g {
			t.Fatalf("ParseSegmentName(SegmentName(%d)) = %d, %v", g, got, ok)
		}
	}
	for _, bad := range []string{"wal-.log", "wal-12.log.tmp", "snapshot.flood", "xwal-000001.log", "wal--00001.log"} {
		if _, ok := ParseSegmentName(bad); ok {
			t.Fatalf("ParseSegmentName accepted %q", bad)
		}
	}
}

// TestReplayEveryTruncation cuts the segment at every byte length: replay
// must always recover an exact prefix of the appended records, flag damage
// when (and only when) the cut falls mid-record, and never error or panic.
func TestReplayEveryTruncation(t *testing.T) {
	dir := t.TempDir()
	recs := testRecords(20)
	path := writeSegment(t, dir, 1, recs, Options{Policy: SyncNone})
	full, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	cut := filepath.Join(dir, "cut.log")
	for size := 0; size <= len(full); size++ {
		if err := os.WriteFile(cut, full[:size], 0o644); err != nil {
			t.Fatal(err)
		}
		res, got := replayAll(t, cut)
		for i := range got {
			if !bytes.Equal(got[i], recs[i]) {
				t.Fatalf("cut %d: record %d is not a prefix of the appended records", size, i)
			}
		}
		if size < len(full) && !res.Damaged && res.ValidSize != int64(size) {
			t.Fatalf("cut %d: clean replay but ValidSize %d", size, res.ValidSize)
		}
	}
}

// TestReplayEveryFlip inverts every byte of the segment in turn: replay must
// recover a prefix of the appended records (detection, not correction) and
// report typed damage for the rest — never a record that was not appended.
func TestReplayEveryFlip(t *testing.T) {
	dir := t.TempDir()
	recs := testRecords(12)
	path := writeSegment(t, dir, 1, recs, Options{Policy: SyncNone})
	full, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	flip := filepath.Join(dir, "flip.log")
	for off := 0; off < len(full); off++ {
		if err := os.WriteFile(flip, faultfs.Flip(full, off), 0o644); err != nil {
			t.Fatal(err)
		}
		res, got := replayAll(t, flip)
		if !res.Damaged {
			t.Fatalf("flip at %d undetected", off)
		}
		if res.Err == nil {
			t.Fatalf("flip at %d: Damaged without Err", off)
		}
		for i := range got {
			if !bytes.Equal(got[i], recs[i]) {
				t.Fatalf("flip at %d: replay yielded a non-prefix record %d", off, i)
			}
		}
	}
}

// TestTruncateTailRecovers damages the tail, truncates at ValidSize, and
// verifies the shortened segment replays cleanly with the surviving prefix.
func TestTruncateTailRecovers(t *testing.T) {
	dir := t.TempDir()
	recs := testRecords(10)
	path := writeSegment(t, dir, 3, recs, Options{Policy: SyncNone})
	fi, _ := os.Stat(path)
	if err := faultfs.TruncateFile(path, fi.Size()-3); err != nil {
		t.Fatal(err)
	}
	res, _ := replayAll(t, path)
	if !res.Damaged || res.Records != len(recs)-1 {
		t.Fatalf("damaged tail: records %d, damaged %v", res.Records, res.Damaged)
	}
	if err := TruncateTail(path, res.ValidSize); err != nil {
		t.Fatal(err)
	}
	res2, got := replayAll(t, path)
	if res2.Damaged || res2.Records != len(recs)-1 {
		t.Fatalf("after truncation: records %d, damaged %v", res2.Records, res2.Damaged)
	}
	_ = got
}

// TestWALGroupCommit hammers one SyncAlways log from many goroutines; every
// acknowledged append must replay, and the group-commit path must be
// race-free (runs in the CI race matrix).
func TestWALGroupCommit(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, SegmentName(1))
	l, err := Create(path, 1, Options{Policy: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	const workers, per = 8, 25
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				if err := l.Append([]byte(fmt.Sprintf("w%d-%d", w, i))); err != nil {
					t.Errorf("append: %v", err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	res, got := replayAll(t, path)
	if res.Damaged || res.Records != workers*per {
		t.Fatalf("replayed %d records (damaged=%v), want %d", res.Records, res.Damaged, workers*per)
	}
	seen := make(map[string]bool, len(got))
	for _, r := range got {
		seen[string(r)] = true
	}
	if len(seen) != workers*per {
		t.Fatalf("%d distinct records, want %d", len(seen), workers*per)
	}
}

// TestWALIntervalPolicySyncsOnClose verifies SyncInterval acks immediately
// but Close still makes everything durable.
func TestWALIntervalPolicySyncsOnClose(t *testing.T) {
	dir := t.TempDir()
	recs := testRecords(30)
	path := writeSegment(t, dir, 1, recs, Options{Policy: SyncInterval})
	res, _ := replayAll(t, path)
	if res.Damaged || res.Records != len(recs) {
		t.Fatalf("replayed %d (damaged=%v), want %d", res.Records, res.Damaged, len(recs))
	}
}

// TestTornHeaderIsDamage writes a segment through a torn writer that fails
// inside the header: replay must report damage with zero records.
func TestTornHeaderIsDamage(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, SegmentName(1))
	recs := testRecords(5)
	full := writeSegment(t, dir, 2, recs, Options{Policy: SyncNone})
	data, err := os.ReadFile(full)
	if err != nil {
		t.Fatal(err)
	}
	var torn bytes.Buffer
	w := &faultfs.Writer{W: &torn, Limit: HeaderSize - 5}
	if _, err := w.Write(data); err != faultfs.ErrInjected {
		t.Fatalf("torn writer returned %v", err)
	}
	if err := os.WriteFile(path, torn.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	res, got := replayAll(t, path)
	if !res.Damaged || len(got) != 0 || res.ValidSize != 0 {
		t.Fatalf("torn header: %+v with %d records", res, len(got))
	}
}

// BenchmarkWALAppend measures the append hot path without fsync (SyncNone):
// frame construction, CRC, and the buffered write. The fsync cost is a
// policy decision, not a code path to optimize here.
func BenchmarkWALAppend(b *testing.B) {
	dir := b.TempDir()
	l, err := Create(filepath.Join(dir, SegmentName(1)), 1, Options{Policy: SyncNone})
	if err != nil {
		b.Fatal(err)
	}
	defer l.Close()
	payload := make([]byte, 64)
	b.SetBytes(int64(len(payload) + 8))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := l.Append(payload); err != nil {
			b.Fatal(err)
		}
	}
}
