package wire

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
)

// Snapshot format v2: an 8-byte header followed by a fixed number of
// independently checksummed sections.
//
//	header:  "FLOOD" | version u8 | section count u16 (little-endian)
//	section: tag [4]byte | payload length u64 | payload | CRC32-C u32
//
// The CRC covers tag, length, and payload, so any single-byte corruption of
// a section — including its framing — is detected. The header carries the
// section count so a file truncated at a section boundary is detected too:
// fewer sections than declared is ErrTruncated, trailing bytes past the last
// declared section are ErrChecksum.
const (
	// SnapshotMagic prefixes every versioned snapshot.
	SnapshotMagic = "FLOOD"
	// HeaderSize is the fixed size of the snapshot header in bytes.
	HeaderSize = 8
	// MaxSectionLen bounds a section's declared payload length; anything
	// larger is treated as corruption rather than an allocation request.
	MaxSectionLen = int64(1) << 40
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// WriteHeader writes the v2 snapshot header: magic, version, and the number
// of sections that follow.
func WriteHeader(w io.Writer, version uint8, sections int) error {
	var h [HeaderSize]byte
	copy(h[:], SnapshotMagic)
	h[5] = version
	binary.LittleEndian.PutUint16(h[6:], uint16(sections))
	_, err := w.Write(h[:])
	return err
}

// ParseHeader validates an 8-byte snapshot header against the expected
// version and returns the declared section count. A wrong magic or version
// byte yields ErrVersion.
func ParseHeader(h []byte, version uint8) (sections int, err error) {
	if len(h) < HeaderSize || string(h[:len(SnapshotMagic)]) != SnapshotMagic {
		return 0, fmt.Errorf("not a flood snapshot: %w", ErrVersion)
	}
	if h[5] != version {
		return 0, fmt.Errorf("snapshot format version %d, supported %d: %w", h[5], version, ErrVersion)
	}
	return int(binary.LittleEndian.Uint16(h[6:])), nil
}

// SectionWriter frames checksummed sections onto an underlying stream. Each
// section's payload is staged in memory, then written as one
// tag+length+payload+CRC frame. Errors are sticky.
type SectionWriter struct {
	w   io.Writer
	buf bytes.Buffer
	err error
}

// NewSectionWriter wraps w, which must already carry a header written with
// WriteHeader declaring the number of sections that will follow.
func NewSectionWriter(w io.Writer) *SectionWriter { return &SectionWriter{w: w} }

// Err returns the first error encountered.
func (s *SectionWriter) Err() error { return s.err }

// Section stages one section: encode writes the payload through a field
// Writer, and the framed, checksummed result is appended to the stream.
func (s *SectionWriter) Section(tag string, encode func(*Writer)) {
	if s.err != nil {
		return
	}
	if len(tag) != 4 {
		s.err = fmt.Errorf("wire: section tag %q must be 4 bytes", tag)
		return
	}
	s.buf.Reset()
	fw := NewWriter(&s.buf)
	encode(fw)
	if s.err = fw.Flush(); s.err != nil {
		return
	}
	payload := s.buf.Bytes()
	var frame [12]byte
	copy(frame[:4], tag)
	binary.LittleEndian.PutUint64(frame[4:], uint64(len(payload)))
	crc := crc32.Update(0, crcTable, frame[:])
	crc = crc32.Update(crc, crcTable, payload)
	var sum [4]byte
	binary.LittleEndian.PutUint32(sum[:], crc)
	if _, s.err = s.w.Write(frame[:]); s.err != nil {
		return
	}
	if _, s.err = s.w.Write(payload); s.err != nil {
		return
	}
	_, s.err = s.w.Write(sum[:])
}

// SectionReader iterates the checksummed sections of a v2 snapshot stream
// positioned just past the header.
type SectionReader struct {
	r         io.Reader
	remaining int
}

// NewSectionReader wraps a stream holding count framed sections.
func NewSectionReader(r io.Reader, count int) *SectionReader {
	return &SectionReader{r: r, remaining: count}
}

// Next reads one section. It returns io.EOF after the declared count (after
// verifying the stream ends there). A CRC mismatch returns the (possibly
// damaged) tag with ErrChecksum; the stream stays positioned at the next
// section, so the caller may keep iterating. Truncation returns whatever tag
// was recovered with ErrTruncated; further reads are not possible.
func (s *SectionReader) Next() (tag string, payload []byte, err error) {
	if s.remaining == 0 {
		// The declared sections are done; anything further is corruption
		// (most likely a flipped section count).
		var b [1]byte
		if n, _ := io.ReadFull(s.r, b[:]); n != 0 {
			return "", nil, fmt.Errorf("trailing data after final section: %w", ErrChecksum)
		}
		return "", nil, io.EOF
	}
	s.remaining--
	var frame [12]byte
	if _, err := io.ReadFull(s.r, frame[:]); err != nil {
		return "", nil, fmt.Errorf("section frame: %w", ErrTruncated)
	}
	tag = string(frame[:4])
	length := binary.LittleEndian.Uint64(frame[4:])
	if length > uint64(MaxSectionLen) {
		return tag, nil, fmt.Errorf("section %q declares %d bytes: %w", tag, length, ErrChecksum)
	}
	// Read the payload in bounded chunks so a corrupt length cannot force a
	// huge allocation before the stream runs dry.
	payload = make([]byte, 0, min(length, 1<<16))
	var chunk [1 << 16]byte
	for uint64(len(payload)) < length {
		k := min(length-uint64(len(payload)), uint64(len(chunk)))
		if _, err := io.ReadFull(s.r, chunk[:k]); err != nil {
			return tag, nil, fmt.Errorf("section %q payload: %w", tag, ErrTruncated)
		}
		payload = append(payload, chunk[:k]...)
	}
	var sum [4]byte
	if _, err := io.ReadFull(s.r, sum[:]); err != nil {
		return tag, nil, fmt.Errorf("section %q checksum: %w", tag, ErrTruncated)
	}
	crc := crc32.Update(0, crcTable, frame[:])
	crc = crc32.Update(crc, crcTable, payload)
	if crc != binary.LittleEndian.Uint32(sum[:]) {
		return tag, nil, fmt.Errorf("section %q: %w", tag, ErrChecksum)
	}
	return tag, payload, nil
}

// Checksum returns the CRC32-C of data, the polynomial shared by snapshot
// sections and WAL records.
func Checksum(data []byte) uint32 { return crc32.Checksum(data, crcTable) }

// ChecksumUpdate extends a CRC32-C with more data.
func ChecksumUpdate(crc uint32, data []byte) uint32 { return crc32.Update(crc, crcTable, data) }
