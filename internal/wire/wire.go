// Package wire implements the little-endian binary encoding used to persist
// built indexes (layouts, models, and compressed columns). Writers and
// readers are sticky-error: callers chain field operations and check the
// final error once.
package wire

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
)

// Typed corruption errors. Every decode failure caused by damaged input wraps
// one of these, so callers can distinguish a short file from a bit flip from
// a foreign or future format with errors.Is.
var (
	// ErrTruncated reports input that ends before a complete structure
	// (header, section, length-prefixed field) could be read.
	ErrTruncated = errors.New("wire: truncated input")
	// ErrChecksum reports a section whose payload does not match its CRC.
	ErrChecksum = errors.New("wire: checksum mismatch")
	// ErrVersion reports input that is not a recognized flood snapshot or
	// carries an unsupported format version.
	ErrVersion = errors.New("wire: unsupported format or version")
)

// Writer serializes primitive fields to an underlying stream.
type Writer struct {
	w   *bufio.Writer
	n   int64
	err error
}

// NewWriter wraps w.
func NewWriter(w io.Writer) *Writer { return &Writer{w: bufio.NewWriterSize(w, 1<<16)} }

// Err returns the first error encountered.
func (w *Writer) Err() error { return w.err }

// Len returns the number of bytes written so far.
func (w *Writer) Len() int64 { return w.n }

// Flush drains buffered output and returns the sticky error.
func (w *Writer) Flush() error {
	if w.err != nil {
		return w.err
	}
	w.err = w.w.Flush()
	return w.err
}

func (w *Writer) write(buf []byte) {
	if w.err != nil {
		return
	}
	k, err := w.w.Write(buf)
	w.n += int64(k)
	w.err = err
}

// U64 writes a fixed 8-byte unsigned integer.
func (w *Writer) U64(v uint64) {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], v)
	w.write(buf[:])
}

// I64 writes a fixed 8-byte signed integer.
func (w *Writer) I64(v int64) { w.U64(uint64(v)) }

// Int writes an int as 8 bytes.
func (w *Writer) Int(v int) { w.U64(uint64(int64(v))) }

// U32 writes a fixed 4-byte unsigned integer.
func (w *Writer) U32(v uint32) {
	var buf [4]byte
	binary.LittleEndian.PutUint32(buf[:], v)
	w.write(buf[:])
}

// U8 writes one byte.
func (w *Writer) U8(v uint8) { w.write([]byte{v}) }

// Bool writes one byte.
func (w *Writer) Bool(v bool) {
	if v {
		w.U8(1)
	} else {
		w.U8(0)
	}
}

// F64 writes a float64 bit pattern.
func (w *Writer) F64(v float64) { w.U64(math.Float64bits(v)) }

// Str writes a length-prefixed string.
func (w *Writer) Str(s string) {
	w.Int(len(s))
	w.write([]byte(s))
}

// I64s writes a length-prefixed int64 slice.
func (w *Writer) I64s(vs []int64) {
	w.Int(len(vs))
	for _, v := range vs {
		w.I64(v)
	}
}

// U64s writes a length-prefixed uint64 slice.
func (w *Writer) U64s(vs []uint64) {
	w.Int(len(vs))
	for _, v := range vs {
		w.U64(v)
	}
}

// U32s writes a length-prefixed uint32 slice.
func (w *Writer) U32s(vs []uint32) {
	w.Int(len(vs))
	for _, v := range vs {
		w.U32(v)
	}
}

// I32s writes a length-prefixed int32 slice.
func (w *Writer) I32s(vs []int32) {
	w.Int(len(vs))
	for _, v := range vs {
		w.U32(uint32(v))
	}
}

// U8s writes a length-prefixed byte slice.
func (w *Writer) U8s(vs []uint8) {
	w.Int(len(vs))
	w.write(vs)
}

// Ints writes a length-prefixed int slice.
func (w *Writer) Ints(vs []int) {
	w.Int(len(vs))
	for _, v := range vs {
		w.Int(v)
	}
}

// F64s writes a length-prefixed float64 slice.
func (w *Writer) F64s(vs []float64) {
	w.Int(len(vs))
	for _, v := range vs {
		w.F64(v)
	}
}

// Strs writes a length-prefixed string slice.
func (w *Writer) Strs(vs []string) {
	w.Int(len(vs))
	for _, s := range vs {
		w.Str(s)
	}
}

// maxLen bounds length prefixes against corrupt or hostile inputs.
const maxLen = 1 << 31

// Reader deserializes fields written by Writer.
type Reader struct {
	r   *bufio.Reader
	err error
}

// NewReader wraps r.
func NewReader(r io.Reader) *Reader { return &Reader{r: bufio.NewReaderSize(r, 1<<16)} }

// NewReaderBytes reads fields from an in-memory buffer, such as a verified
// snapshot section payload.
func NewReaderBytes(b []byte) *Reader { return &Reader{r: bufio.NewReader(bytes.NewReader(b))} }

// Err returns the first error encountered.
func (r *Reader) Err() error { return r.err }

func (r *Reader) read(buf []byte) {
	if r.err != nil {
		return
	}
	if _, err := io.ReadFull(r.r, buf); err != nil {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			err = fmt.Errorf("unexpected end of input: %w", ErrTruncated)
		}
		r.err = err
	}
}

// U64 reads a fixed 8-byte unsigned integer.
func (r *Reader) U64() uint64 {
	var buf [8]byte
	r.read(buf[:])
	if r.err != nil {
		return 0
	}
	return binary.LittleEndian.Uint64(buf[:])
}

// I64 reads a fixed 8-byte signed integer.
func (r *Reader) I64() int64 { return int64(r.U64()) }

// Int reads an int written by Writer.Int.
func (r *Reader) Int() int { return int(r.I64()) }

// U32 reads a fixed 4-byte unsigned integer.
func (r *Reader) U32() uint32 {
	var buf [4]byte
	r.read(buf[:])
	if r.err != nil {
		return 0
	}
	return binary.LittleEndian.Uint32(buf[:])
}

// U8 reads one byte.
func (r *Reader) U8() uint8 {
	var buf [1]byte
	r.read(buf[:])
	return buf[0]
}

// Bool reads one byte.
func (r *Reader) Bool() bool { return r.U8() != 0 }

// F64 reads a float64.
func (r *Reader) F64() float64 { return math.Float64frombits(r.U64()) }

func (r *Reader) length() int {
	n := r.Int()
	if r.err == nil && (n < 0 || n > maxLen) {
		r.err = fmt.Errorf("wire: invalid length %d", n)
		return 0
	}
	return n
}

// Str reads a length-prefixed string.
func (r *Reader) Str() string {
	n := r.length()
	if r.err != nil {
		return ""
	}
	out := make([]byte, 0, allocHint(n))
	var buf [8 * readBatch]byte
	for len(out) < n {
		k := min(n-len(out), len(buf))
		r.read(buf[:k])
		if r.err != nil {
			return ""
		}
		out = append(out, buf[:k]...)
	}
	return string(out)
}

// Slice readers grow their result incrementally in bounded batches instead
// of trusting the length prefix with one up-front allocation: a corrupt or
// hostile prefix claiming 2^30 elements fails with ErrTruncated after
// reading (and allocating) only what the input actually contains. readBatch
// is the shared chunk size in elements.
const readBatch = 512

// allocHint caps the initial capacity reserved from a length prefix before
// any payload bytes have been validated.
func allocHint(n int) int {
	if n > 1<<16 {
		return 1 << 16
	}
	return n
}

// I64s reads a length-prefixed int64 slice.
func (r *Reader) I64s() []int64 {
	n := r.length()
	if r.err != nil {
		return nil
	}
	out := make([]int64, 0, allocHint(n))
	var buf [8 * readBatch]byte
	for len(out) < n {
		k := min(n-len(out), readBatch)
		r.read(buf[:8*k])
		if r.err != nil {
			return nil
		}
		for i := 0; i < k; i++ {
			out = append(out, int64(binary.LittleEndian.Uint64(buf[i*8:])))
		}
	}
	return out
}

// U64s reads a length-prefixed uint64 slice.
func (r *Reader) U64s() []uint64 {
	n := r.length()
	if r.err != nil {
		return nil
	}
	out := make([]uint64, 0, allocHint(n))
	var buf [8 * readBatch]byte
	for len(out) < n {
		k := min(n-len(out), readBatch)
		r.read(buf[:8*k])
		if r.err != nil {
			return nil
		}
		for i := 0; i < k; i++ {
			out = append(out, binary.LittleEndian.Uint64(buf[i*8:]))
		}
	}
	return out
}

// U32s reads a length-prefixed uint32 slice.
func (r *Reader) U32s() []uint32 {
	n := r.length()
	if r.err != nil {
		return nil
	}
	out := make([]uint32, 0, allocHint(n))
	var buf [4 * readBatch]byte
	for len(out) < n {
		k := min(n-len(out), readBatch)
		r.read(buf[:4*k])
		if r.err != nil {
			return nil
		}
		for i := 0; i < k; i++ {
			out = append(out, binary.LittleEndian.Uint32(buf[i*4:]))
		}
	}
	return out
}

// I32s reads a length-prefixed int32 slice.
func (r *Reader) I32s() []int32 {
	n := r.length()
	if r.err != nil {
		return nil
	}
	out := make([]int32, 0, allocHint(n))
	var buf [4 * readBatch]byte
	for len(out) < n {
		k := min(n-len(out), readBatch)
		r.read(buf[:4*k])
		if r.err != nil {
			return nil
		}
		for i := 0; i < k; i++ {
			out = append(out, int32(binary.LittleEndian.Uint32(buf[i*4:])))
		}
	}
	return out
}

// U8s reads a length-prefixed byte slice.
func (r *Reader) U8s() []uint8 {
	n := r.length()
	if r.err != nil {
		return nil
	}
	out := make([]uint8, 0, allocHint(n))
	var buf [8 * readBatch]byte
	for len(out) < n {
		k := min(n-len(out), len(buf))
		r.read(buf[:k])
		if r.err != nil {
			return nil
		}
		out = append(out, buf[:k]...)
	}
	return out
}

// Ints reads a length-prefixed int slice.
func (r *Reader) Ints() []int {
	n := r.length()
	if r.err != nil {
		return nil
	}
	out := make([]int, 0, allocHint(n))
	var buf [8 * readBatch]byte
	for len(out) < n {
		k := min(n-len(out), readBatch)
		r.read(buf[:8*k])
		if r.err != nil {
			return nil
		}
		for i := 0; i < k; i++ {
			out = append(out, int(int64(binary.LittleEndian.Uint64(buf[i*8:]))))
		}
	}
	return out
}

// F64s reads a length-prefixed float64 slice.
func (r *Reader) F64s() []float64 {
	n := r.length()
	if r.err != nil {
		return nil
	}
	out := make([]float64, 0, allocHint(n))
	var buf [8 * readBatch]byte
	for len(out) < n {
		k := min(n-len(out), readBatch)
		r.read(buf[:8*k])
		if r.err != nil {
			return nil
		}
		for i := 0; i < k; i++ {
			out = append(out, math.Float64frombits(binary.LittleEndian.Uint64(buf[i*8:])))
		}
	}
	return out
}

// Strs reads a length-prefixed string slice.
func (r *Reader) Strs() []string {
	n := r.length()
	if r.err != nil {
		return nil
	}
	out := make([]string, 0, allocHint(n))
	for len(out) < n {
		out = append(out, r.Str())
		if r.err != nil {
			return nil
		}
	}
	return out
}

// Expect fails the reader when the next bytes do not match tag.
func (r *Reader) Expect(tag string) {
	got := make([]byte, len(tag))
	r.read(got)
	if r.err == nil && string(got) != tag {
		r.err = fmt.Errorf("wire: expected tag %q, found %q", tag, got)
	}
}

// Tag writes a raw, unprefixed tag.
func (w *Writer) Tag(tag string) { w.write([]byte(tag)) }
