package wire

import (
	"bytes"
	"math"
	"testing"
	"testing/quick"
)

func TestRoundtripAllTypes(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.Tag("TAG!")
	w.U64(math.MaxUint64)
	w.I64(math.MinInt64)
	w.Int(-42)
	w.U32(1 << 31)
	w.U8(255)
	w.Bool(true)
	w.Bool(false)
	w.F64(math.Pi)
	w.Str("hello, 世界")
	w.I64s([]int64{-1, 0, 1})
	w.U64s([]uint64{7})
	w.U32s([]uint32{1, 2, 3})
	w.I32s([]int32{-9, 9})
	w.U8s([]byte{0xde, 0xad})
	w.Ints([]int{5, -5})
	w.F64s([]float64{1.5, -2.5})
	w.Strs([]string{"a", "", "c"})
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if w.Len() == 0 {
		t.Fatal("Len not tracked")
	}

	r := NewReader(&buf)
	r.Expect("TAG!")
	if r.U64() != math.MaxUint64 || r.I64() != math.MinInt64 || r.Int() != -42 {
		t.Fatal("integer roundtrip failed")
	}
	if r.U32() != 1<<31 || r.U8() != 255 || !r.Bool() || r.Bool() {
		t.Fatal("small-type roundtrip failed")
	}
	if r.F64() != math.Pi || r.Str() != "hello, 世界" {
		t.Fatal("f64/string roundtrip failed")
	}
	i64s := r.I64s()
	if len(i64s) != 3 || i64s[0] != -1 || i64s[2] != 1 {
		t.Fatal("i64s roundtrip failed")
	}
	if u := r.U64s(); len(u) != 1 || u[0] != 7 {
		t.Fatal("u64s roundtrip failed")
	}
	if u := r.U32s(); len(u) != 3 || u[2] != 3 {
		t.Fatal("u32s roundtrip failed")
	}
	if v := r.I32s(); len(v) != 2 || v[0] != -9 {
		t.Fatal("i32s roundtrip failed")
	}
	if b := r.U8s(); len(b) != 2 || b[0] != 0xde {
		t.Fatal("u8s roundtrip failed")
	}
	if v := r.Ints(); len(v) != 2 || v[1] != -5 {
		t.Fatal("ints roundtrip failed")
	}
	if f := r.F64s(); len(f) != 2 || f[1] != -2.5 {
		t.Fatal("f64s roundtrip failed")
	}
	if s := r.Strs(); len(s) != 3 || s[1] != "" {
		t.Fatal("strs roundtrip failed")
	}
	if err := r.Err(); err != nil {
		t.Fatal(err)
	}
}

func TestRoundtripProperty(t *testing.T) {
	f := func(a []int64, b []float64, s string) bool {
		var buf bytes.Buffer
		w := NewWriter(&buf)
		w.I64s(a)
		w.F64s(b)
		w.Str(s)
		if w.Flush() != nil {
			return false
		}
		r := NewReader(&buf)
		ga := r.I64s()
		gb := r.F64s()
		gs := r.Str()
		if r.Err() != nil || gs != s || len(ga) != len(a) || len(gb) != len(b) {
			return false
		}
		for i := range a {
			if ga[i] != a[i] {
				return false
			}
		}
		for i := range b {
			// NaN compares unequal to itself; compare bit patterns.
			if math.Float64bits(gb[i]) != math.Float64bits(b[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestReaderStickyErrors(t *testing.T) {
	r := NewReader(bytes.NewReader([]byte{1, 2}))
	_ = r.U64() // short read
	if r.Err() == nil {
		t.Fatal("short read should error")
	}
	// Subsequent reads stay failed and return zero values.
	if r.U64() != 0 || r.Str() != "" || r.I64s() != nil {
		t.Fatal("sticky error should zero subsequent reads")
	}
}

func TestExpectMismatch(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.Tag("AAAA")
	w.Flush()
	r := NewReader(&buf)
	r.Expect("BBBB")
	if r.Err() == nil {
		t.Fatal("tag mismatch should error")
	}
}

func TestHostileLengthRejected(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.I64(math.MaxInt64) // absurd length prefix
	w.Flush()
	r := NewReader(&buf)
	if r.I64s(); r.Err() == nil {
		t.Fatal("absurd length must be rejected, not allocated")
	}
}
