package workload

import (
	"math/rand"
	"sync"

	"flood/internal/query"
)

// Reservoir maintains a fixed-size uniform random sample of an unbounded
// query stream using Vitter's Algorithm R. It is the workload-snapshot side
// of the adaptive lifecycle (§8, "Shifting workloads"): a serving facade
// feeds it every live query, and a relearn trains the next layout on
// Snapshot's output — a statistically representative picture of the recent
// workload at O(size) memory, no matter how many queries were served.
//
// A Reservoir is safe for concurrent use; Add is a single short critical
// section suitable for query hot paths.
type Reservoir struct {
	mu    sync.Mutex
	rng   *rand.Rand
	items []query.Query
	size  int
	seen  int64
}

// NewReservoir returns a reservoir keeping a uniform sample of up to size
// queries. Seed fixes the sampling sequence for reproducible tests.
func NewReservoir(size int, seed int64) *Reservoir {
	if size < 1 {
		size = 1
	}
	return &Reservoir{
		rng:   rand.New(rand.NewSource(seed)),
		items: make([]query.Query, 0, size),
		size:  size,
	}
}

// Add offers one query to the sample. The first size queries are kept;
// afterwards each new query replaces a random resident with probability
// size/seen, preserving uniformity over the whole stream. Retained queries
// are deep-copied: callers may pass queries whose Ranges live in reused
// scratch (the pooled disjunction arena does exactly that), so holding the
// caller's slice would corrupt the sample once the scratch is recycled.
func (r *Reservoir) Add(q query.Query) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.seen++
	if len(r.items) < r.size {
		r.items = append(r.items, cloneQuery(q))
		return
	}
	if j := r.rng.Int63n(r.seen); j < int64(r.size) {
		// Reuse the evicted resident's Range storage when it fits: once the
		// reservoir is full, sampling on the query hot path stays
		// allocation-free (Snapshot deep-copies, so nothing aliases the
		// recycled slots).
		if dst := r.items[j].Ranges; cap(dst) >= len(q.Ranges) {
			dst = dst[:len(q.Ranges)]
			copy(dst, q.Ranges)
			r.items[j] = query.Query{Ranges: dst}
			return
		}
		r.items[j] = cloneQuery(q)
	}
}

// cloneQuery gives q private Range storage.
func cloneQuery(q query.Query) query.Query {
	return query.Query{Ranges: append([]query.Range(nil), q.Ranges...)}
}

// Len returns the number of queries currently resident (at most size).
func (r *Reservoir) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.items)
}

// Seen returns the total number of queries offered since the last Reset.
func (r *Reservoir) Seen() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.seen
}

// Snapshot returns a deep copy of the current sample, safe to use while
// Adds continue (replacement writes into recycled Range storage, so a
// shallow copy would see later mutations).
func (r *Reservoir) Snapshot() []query.Query {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]query.Query, len(r.items))
	for i, q := range r.items {
		out[i] = cloneQuery(q)
	}
	return out
}

// Reset empties the sample so it can start tracking a new workload era
// (called after a relearn swaps a fresh layout in).
func (r *Reservoir) Reset() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.items = r.items[:0]
	r.seen = 0
}
