package workload

import (
	"math/rand"

	"flood/internal/dataset"
	"flood/internal/query"
)

// DefaultSelectivity is the paper's workload-wide average selectivity
// (§7.3: "0.1%").
const DefaultSelectivity = 0.001

// Standard generates the dataset's Fig. 7 OLAP workload: the templated
// analyst-style query mix described in §7.3, calibrated to ~0.1% average
// selectivity.
func Standard(ds *dataset.Dataset, n int, seed int64) []query.Query {
	g := NewGenerator(ds, seed)
	return g.Draw(standardTemplates(ds), n, DefaultSelectivity)
}

// StandardWithSelectivity is Standard with an explicit selectivity target
// (Fig. 12b).
func StandardWithSelectivity(ds *dataset.Dataset, n int, target float64, seed int64) []query.Query {
	g := NewGenerator(ds, seed)
	return g.Draw(standardTemplates(ds), n, target)
}

func standardTemplates(ds *dataset.Dataset) []Template {
	col := ds.ColumnIndex
	switch ds.Name {
	case "sales":
		// Report-generation queries: one dominant selective dimension
		// (order_id), mixed with date/customer/product slices.
		return []Template{
			{Dims: []int{col("order_id")}, Sels: []float64{0.001}, Weight: 4},
			{Dims: []int{col("date"), col("customer")}, Sels: evenSels(0.001, 2), Weight: 2},
			{Dims: []int{col("product"), col("date")}, Sels: []float64{0, 0.05}, Equality: []bool{true, false}, Weight: 2},
			{Dims: []int{col("quantity"), col("price"), col("date")}, Sels: evenSels(0.001, 3), Weight: 1},
			{Dims: []int{col("customer")}, Sels: []float64{0.001}, Equality: []bool{true}, Weight: 1},
		}
	case "tpch":
		// Filters commonly found in the TPC-H query set (§7.3).
		return []Template{
			{Dims: []int{col("shipdate"), col("discount"), col("quantity")}, Sels: evenSels(0.001, 3), Weight: 3}, // Q6-style
			{Dims: []int{col("shipdate"), col("receiptdate")}, Sels: evenSels(0.001, 2), Weight: 2},
			{Dims: []int{col("orderkey")}, Sels: []float64{0.001}, Weight: 2},
			{Dims: []int{col("suppkey"), col("shipdate")}, Sels: evenSels(0.001, 2), Weight: 2},
			{Dims: []int{col("quantity"), col("discount")}, Sels: evenSels(0.001, 2), Weight: 1},
			{Dims: []int{col("receiptdate"), col("suppkey"), col("quantity")}, Sels: evenSels(0.001, 3), Weight: 1},
		}
	case "osm":
		// Analytics questions from §7.3: nodes added in a time window,
		// buildings in a lat-lon rectangle, etc. 1-3 dims per query.
		return []Template{
			{Dims: []int{col("lat"), col("lon")}, Sels: evenSels(0.001, 2), Weight: 3},
			{Dims: []int{col("timestamp")}, Sels: []float64{0.001}, Weight: 2},
			{Dims: []int{col("type"), col("timestamp")}, Sels: []float64{0, 0.01}, Equality: []bool{true, false}, Weight: 2},
			{Dims: []int{col("lat"), col("lon"), col("category")}, Sels: []float64{0.03, 0.03, 0}, Equality: []bool{false, false, true}, Weight: 2},
			{Dims: []int{col("id")}, Sels: []float64{0.001}, Weight: 1},
		}
	case "perfmon":
		return []Template{
			{Dims: []int{col("time"), col("machine")}, Sels: []float64{0.02, 0}, Equality: []bool{false, true}, Weight: 3},
			{Dims: []int{col("cpu"), col("time")}, Sels: evenSels(0.001, 2), Weight: 2},
			{Dims: []int{col("mem"), col("swap")}, Sels: evenSels(0.001, 2), Weight: 2},
			{Dims: []int{col("load"), col("time"), col("cpu")}, Sels: evenSels(0.001, 3), Weight: 1},
			{Dims: []int{col("machine"), col("cpu")}, Sels: []float64{0, 0.01}, Equality: []bool{true, false}, Weight: 1},
		}
	default: // uniform synthetic: filter the first k dims (§7.5)
		d := ds.Table.NumCols()
		var ts []Template
		for k := 1; k <= d; k++ {
			dims := make([]int, k)
			for i := range dims {
				dims[i] = i
			}
			ts = append(ts, Template{Dims: dims, Sels: evenSels(0.001, k), Weight: 1})
		}
		return ts
	}
}

// ArchetypeKind names the Fig. 9 workload archetypes.
type ArchetypeKind string

const (
	// FewerDims (FD): queries filter a strict subset of the indexed dims.
	FewerDims ArchetypeKind = "FD"
	// ManyDims (MD): queries filter as many dims as the index has.
	ManyDims ArchetypeKind = "MD"
	// OLAPSkewed (O): analyst mix with skewed type frequencies.
	OLAPSkewed ArchetypeKind = "O"
	// OLAPUniform (Ou): every query type equally likely.
	OLAPUniform ArchetypeKind = "Ou"
	// OLTP1 (O1): point lookups on one primary-key attribute.
	OLTP1 ArchetypeKind = "O1"
	// OLTP2 (O2): point lookups on two key attributes.
	OLTP2 ArchetypeKind = "O2"
	// Mixed (OO): an equal split of OLTP and OLAP queries.
	Mixed ArchetypeKind = "OO"
	// SingleType (ST): a single query type, fixed dims and selectivities.
	SingleType ArchetypeKind = "ST"
)

// Archetypes lists the Fig. 9 workload kinds in the paper's order.
func Archetypes() []ArchetypeKind {
	return []ArchetypeKind{FewerDims, ManyDims, Mixed, OLAPSkewed, OLAPUniform, OLTP1, OLTP2, SingleType}
}

// Archetype generates a Fig. 9 workload of the given kind.
func Archetype(ds *dataset.Dataset, kind ArchetypeKind, n int, seed int64) []query.Query {
	g := NewGenerator(ds, seed)
	std := standardTemplates(ds)
	keyDim := 0 // generators emit a key-like attribute as column 0
	switch kind {
	case FewerDims:
		// Only the first two dims of each template.
		var ts []Template
		for _, tp := range std {
			if len(tp.Dims) > 2 {
				tp.Dims = tp.Dims[:2]
				tp.Sels = evenSels(0.001, 2)
				tp.Equality = nil
			}
			ts = append(ts, tp)
		}
		return g.Draw(ts, n, DefaultSelectivity)
	case ManyDims:
		d := ds.Table.NumCols()
		dims := make([]int, d)
		for i := range dims {
			dims[i] = i
		}
		return g.Draw([]Template{{Dims: dims, Sels: evenSels(0.001, d), Weight: 1}}, n, DefaultSelectivity)
	case OLAPSkewed:
		return g.Draw(std, n, DefaultSelectivity)
	case OLAPUniform:
		var ts []Template
		for _, tp := range std {
			tp.Weight = 1
			ts = append(ts, tp)
		}
		return g.Draw(ts, n, DefaultSelectivity)
	case OLTP1:
		return pointLookups(g, []int{keyDim}, n)
	case OLTP2:
		return pointLookups(g, []int{keyDim, 1}, n)
	case Mixed:
		half := pointLookups(g, []int{keyDim}, n/2)
		return append(half, g.Draw(std, n-len(half), DefaultSelectivity)...)
	case SingleType:
		return g.Draw(std[:1], n, DefaultSelectivity)
	default:
		return g.Draw(std, n, DefaultSelectivity)
	}
}

// pointLookups draws single-record equality queries over the given dims.
func pointLookups(g *Generator, dims []int, n int) []query.Query {
	out := make([]query.Query, 0, n)
	nRows := g.ds.Table.NumRows()
	for i := 0; i < n; i++ {
		row := g.rng.Intn(nRows)
		q := query.NewQuery(g.ds.Table.NumCols())
		for _, d := range dims {
			q = q.WithEquals(d, g.ds.Cols[d][row])
		}
		out = append(out, q)
	}
	return out
}

// Random generates one of the Fig. 10 random workloads: at most 10 distinct
// query types, each over up to 6 dims chosen uniformly at random, with
// random per-dimension selectivities targeting ~0.1% total and extra
// selectivity on key attributes.
func Random(ds *dataset.Dataset, n int, seed int64) []query.Query {
	rng := rand.New(rand.NewSource(seed))
	g := NewGenerator(ds, rng.Int63())
	d := ds.Table.NumCols()
	nTypes := 1 + rng.Intn(10)
	var ts []Template
	for t := 0; t < nTypes; t++ {
		k := 1 + rng.Intn(min(6, d))
		dims := rng.Perm(d)[:k]
		sels := make([]float64, k)
		// Random split of the total selectivity across dims, biased
		// toward key attributes (column 0).
		for i := range sels {
			sels[i] = rng.Float64()
		}
		base := evenSels(DefaultSelectivity, k)
		for i := range sels {
			sels[i] = clamp01(base[i] * (0.25 + 1.5*sels[i]))
			if dims[i] == 0 {
				sels[i] = clamp01(sels[i] * 0.2) // more selective on keys
			}
		}
		ts = append(ts, Template{Dims: dims, Sels: sels, Weight: 1 + rng.Float64()*3})
	}
	return g.Draw(ts, n, DefaultSelectivity)
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
