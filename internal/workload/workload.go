// Package workload synthesizes the query workloads of §7.3–§7.4: per-dataset
// OLAP mixes with calibrated average selectivity (~0.1%), the workload
// archetypes of Fig. 9 (point lookups, uniform/skewed OLAP, mixed OLTP+OLAP,
// single-type, fewer-dims), and the random workloads of Fig. 10. It also
// measures per-dimension selectivities, which both the layout optimizer and
// the baseline tuners use to rank dimensions.
package workload

import (
	"math"
	"math/rand"
	"sort"

	"flood/internal/dataset"
	"flood/internal/query"
)

// Template describes one query type: which dimensions it filters, the
// per-dimension selectivity fraction, and whether the filter is an equality.
type Template struct {
	Dims     []int
	Sels     []float64 // fraction of the column's values the range covers
	Equality []bool    // equality predicates ignore Sels for that dim
	Weight   float64   // relative frequency in the workload
}

// Generator draws queries against one dataset.
type Generator struct {
	ds     *dataset.Dataset
	rng    *rand.Rand
	quants [][]int64 // per column: sorted value sample for quantile lookups
	sample [][]int64 // column-major sample for selectivity calibration
}

const (
	quantSample = 8192
	calSample   = 8192
)

// NewGenerator prepares per-column quantile tables from ds.
func NewGenerator(ds *dataset.Dataset, seed int64) *Generator {
	g := &Generator{ds: ds, rng: rand.New(rand.NewSource(seed))}
	n := ds.Table.NumRows()
	d := ds.Table.NumCols()
	g.quants = make([][]int64, d)
	g.sample = make([][]int64, d)
	step := n / quantSample
	if step < 1 {
		step = 1
	}
	for c := 0; c < d; c++ {
		var s []int64
		for i := 0; i < n; i += step {
			s = append(s, ds.Cols[c][i])
		}
		g.sample[c] = s
		sorted := append([]int64(nil), s...)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
		g.quants[c] = sorted
	}
	return g
}

// quantile returns the value at fraction f of column c's distribution.
func (g *Generator) quantile(c int, f float64) int64 {
	qs := g.quants[c]
	i := int(f * float64(len(qs)))
	if i < 0 {
		i = 0
	}
	if i >= len(qs) {
		i = len(qs) - 1
	}
	return qs[i]
}

// FromTemplate draws one query from tp, placing each range at a random
// position within the column's distribution.
func (g *Generator) FromTemplate(tp Template) query.Query {
	q := query.NewQuery(g.ds.Table.NumCols())
	for i, d := range tp.Dims {
		if i < len(tp.Equality) && tp.Equality[i] {
			v := g.quantile(d, g.rng.Float64())
			q = q.WithEquals(d, v)
			continue
		}
		s := tp.Sels[i]
		if s > 1 {
			s = 1
		}
		u := g.rng.Float64() * (1 - s)
		lo := g.quantile(d, u)
		hi := g.quantile(d, u+s)
		if hi < lo {
			lo, hi = hi, lo
		}
		q = q.WithRange(d, lo, hi)
	}
	return q
}

// Selectivity measures the fraction of (sampled) rows matching q.
func (g *Generator) Selectivity(q query.Query) float64 {
	n := len(g.sample[0])
	if n == 0 {
		return 0
	}
	match := 0
	point := make([]int64, len(g.sample))
	for i := 0; i < n; i++ {
		for c := range g.sample {
			point[c] = g.sample[c][i]
		}
		if q.Matches(point) {
			match++
		}
	}
	return float64(match) / float64(n)
}

// Calibrated draws a query from tp and retries a bounded number of times
// until its measured selectivity is within a factor of 8 of target
// (correlated dimensions make analytic targeting inexact; the paper scales
// ranges the same way).
func (g *Generator) Calibrated(tp Template, target float64) query.Query {
	var q query.Query
	for attempt := 0; attempt < 12; attempt++ {
		q = g.FromTemplate(tp)
		sel := g.Selectivity(q)
		if sel >= target/8 && sel <= target*8 {
			return q
		}
		// Rescale range widths toward the target and retry.
		if sel > 0 {
			adj := math.Pow(target/sel, 1/float64(len(tp.Dims)))
			for i := range tp.Sels {
				tp.Sels[i] = clamp01(tp.Sels[i] * adj)
			}
		} else {
			for i := range tp.Sels {
				tp.Sels[i] = clamp01(tp.Sels[i] * 2)
			}
		}
	}
	return q
}

func clamp01(v float64) float64 {
	if v < 1e-6 {
		return 1e-6
	}
	if v > 1 {
		return 1
	}
	return v
}

// Draw samples n queries from weighted templates, calibrating each to the
// target selectivity.
func (g *Generator) Draw(templates []Template, n int, target float64) []query.Query {
	total := 0.0
	for _, tp := range templates {
		total += tp.Weight
	}
	out := make([]query.Query, 0, n)
	for len(out) < n {
		r := g.rng.Float64() * total
		acc := 0.0
		for _, tp := range templates {
			acc += tp.Weight
			if r < acc {
				cp := tp
				cp.Sels = append([]float64(nil), tp.Sels...)
				out = append(out, g.Calibrated(cp, target))
				break
			}
		}
	}
	return out
}

// evenSels distributes a joint selectivity target evenly over k range dims.
func evenSels(total float64, k int) []float64 {
	s := math.Pow(total, 1/float64(k))
	out := make([]float64, k)
	for i := range out {
		out[i] = s
	}
	return out
}

// DimSelectivities returns, per dimension, the average fraction of rows
// passing that dimension's filter over the queries that filter it (1.0 for
// dimensions never filtered). Lower = more selective.
func DimSelectivities(g *Generator, queries []query.Query) []float64 {
	d := len(g.sample)
	sums := make([]float64, d)
	counts := make([]int, d)
	for _, q := range queries {
		for dim, r := range q.Ranges {
			if !r.Present {
				continue
			}
			n := len(g.sample[dim])
			match := 0
			for i := 0; i < n; i++ {
				if r.Contains(g.sample[dim][i]) {
					match++
				}
			}
			sums[dim] += float64(match) / float64(n)
			counts[dim]++
		}
	}
	out := make([]float64, d)
	for dim := range out {
		if counts[dim] == 0 {
			out[dim] = 1
		} else {
			out[dim] = sums[dim] / float64(counts[dim])
		}
	}
	return out
}

// OrderBySelectivity returns dimensions sorted from most selective (lowest
// average passing fraction) to least, considering only dims filtered by at
// least one query; unfiltered dims follow in index order.
func OrderBySelectivity(g *Generator, queries []query.Query) []int {
	sels := DimSelectivities(g, queries)
	dims := make([]int, len(sels))
	for i := range dims {
		dims[i] = i
	}
	sort.SliceStable(dims, func(a, b int) bool { return sels[dims[a]] < sels[dims[b]] })
	return dims
}

// SplitTrainTest partitions queries into train/test sets drawn from the same
// distribution (§7.3).
func SplitTrainTest(queries []query.Query, trainFrac float64, seed int64) (train, test []query.Query) {
	rng := rand.New(rand.NewSource(seed))
	for _, q := range queries {
		if rng.Float64() < trainFrac {
			train = append(train, q)
		} else {
			test = append(test, q)
		}
	}
	if len(train) == 0 && len(queries) > 0 {
		train = queries[:1]
	}
	if len(test) == 0 && len(queries) > 0 {
		test = queries[len(queries)-1:]
	}
	return train, test
}
