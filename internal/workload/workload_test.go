package workload

import (
	"testing"

	"flood/internal/dataset"
	"flood/internal/query"
)

func TestStandardWorkloadsSelectivity(t *testing.T) {
	for _, name := range dataset.Names() {
		ds := dataset.ByName(name, 30000, 11)
		g := NewGenerator(ds, 12)
		queries := g.Draw(standardTemplates(ds), 60, DefaultSelectivity)
		if len(queries) != 60 {
			t.Fatalf("%s: got %d queries", name, len(queries))
		}
		var total float64
		for _, q := range queries {
			total += g.Selectivity(q)
		}
		avg := total / float64(len(queries))
		// Calibration is approximate: accept a generous band around 0.1%.
		if avg < DefaultSelectivity/20 || avg > DefaultSelectivity*50 {
			t.Fatalf("%s: average selectivity %.5f too far from %.5f", name, avg, DefaultSelectivity)
		}
	}
}

func TestQueriesAreValid(t *testing.T) {
	ds := dataset.TPCH(20000, 13)
	for _, q := range Standard(ds, 50, 14) {
		if q.Empty() {
			t.Fatalf("generated empty query: %+v", q.Ranges)
		}
		if q.NumFiltered() == 0 {
			t.Fatal("generated unfiltered query")
		}
		if len(q.Ranges) != ds.Table.NumCols() {
			t.Fatal("query dimensionality mismatch")
		}
	}
}

func TestArchetypes(t *testing.T) {
	ds := dataset.TPCH(20000, 15)
	for _, kind := range Archetypes() {
		queries := Archetype(ds, kind, 40, 16)
		if len(queries) != 40 {
			t.Fatalf("%s: got %d queries", kind, len(queries))
		}
		switch kind {
		case OLTP1:
			for _, q := range queries {
				if q.NumFiltered() != 1 {
					t.Fatalf("O1 should filter exactly 1 dim, got %d", q.NumFiltered())
				}
				r := q.Ranges[0]
				if !r.Present || r.Min != r.Max {
					t.Fatal("O1 should be an equality on the key dim")
				}
			}
		case OLTP2:
			for _, q := range queries {
				if q.NumFiltered() != 2 {
					t.Fatalf("O2 should filter 2 dims, got %d", q.NumFiltered())
				}
			}
		case ManyDims:
			for _, q := range queries {
				if q.NumFiltered() != ds.Table.NumCols() {
					t.Fatalf("MD should filter all dims, got %d", q.NumFiltered())
				}
			}
		case FewerDims:
			for _, q := range queries {
				if q.NumFiltered() > 2 {
					t.Fatalf("FD should filter <= 2 dims, got %d", q.NumFiltered())
				}
			}
		}
	}
}

func TestRandomWorkloadsVary(t *testing.T) {
	ds := dataset.TPCH(20000, 17)
	a := Random(ds, 30, 1)
	b := Random(ds, 30, 2)
	if len(a) != 30 || len(b) != 30 {
		t.Fatal("wrong workload sizes")
	}
	diff := false
	for i := range a {
		for d := range a[i].Ranges {
			if a[i].Ranges[d] != b[i].Ranges[d] {
				diff = true
			}
		}
	}
	if !diff {
		t.Fatal("different seeds should give different workloads")
	}
}

func TestDimSelectivitiesOrdering(t *testing.T) {
	ds := dataset.TPCH(20000, 18)
	g := NewGenerator(ds, 19)
	// Build a workload where dim 0 (orderkey) is dramatically more
	// selective than dim 2 (quantity).
	tight := Template{Dims: []int{0}, Sels: []float64{0.001}, Weight: 1}
	wide := Template{Dims: []int{2}, Sels: []float64{0.5}, Weight: 1}
	var queries []query.Query
	for i := 0; i < 20; i++ {
		queries = append(queries, g.FromTemplate(tight), g.FromTemplate(wide))
	}
	sels := DimSelectivities(g, queries)
	if sels[0] >= sels[2] {
		t.Fatalf("orderkey (%.4f) should be more selective than quantity (%.4f)", sels[0], sels[2])
	}
	order := OrderBySelectivity(g, queries)
	if order[0] != 0 {
		t.Fatalf("most selective dim should be 0, got %d", order[0])
	}
	// Unfiltered dims report selectivity 1.
	if sels[5] != 1 {
		t.Fatalf("unfiltered dim selectivity = %f, want 1", sels[5])
	}
}

func TestSplitTrainTest(t *testing.T) {
	ds := dataset.Sales(10000, 20)
	queries := Standard(ds, 100, 21)
	train, test := SplitTrainTest(queries, 0.7, 22)
	if len(train)+len(test) < 100 {
		t.Fatalf("split lost queries: %d + %d", len(train), len(test))
	}
	if len(train) == 0 || len(test) == 0 {
		t.Fatal("both splits must be non-empty")
	}
	_, test2 := SplitTrainTest(queries[:1], 0.99, 23)
	if len(test2) == 0 {
		t.Fatal("degenerate split must still produce a test set")
	}
}

func TestPointLookupsMatchExistingRows(t *testing.T) {
	ds := dataset.OSM(5000, 24)
	queries := Archetype(ds, OLTP1, 20, 25)
	for _, q := range queries {
		// The equality value must exist in the data.
		v := q.Ranges[0].Min
		found := false
		for _, x := range ds.Cols[0] {
			if x == v {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("point lookup value %d not present in column", v)
		}
	}
}
