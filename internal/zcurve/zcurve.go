// Package zcurve implements the Morton (Z-order) encoding shared by the
// Z-order index and UB-tree baselines (Appendix A): d-dimensional points map
// to 64-bit codes by interleaving ⌊64/d⌋ bits per dimension, with the most
// selective dimension contributing the code's least significant bit. The
// package also implements the BIGMIN computation (Tropf & Herzog) the
// UB-tree uses to skip ahead to the next code inside a query rectangle.
package zcurve

import "math/bits"

// Encoder maps points to Z-order codes for a fixed dimensionality and
// per-dimension domain.
type Encoder struct {
	d       int
	bitsPer uint
	mins    []int64
	shifts  []uint // right shift applied to (v - min) so it fits bitsPer bits
	// order[i] is the dimension occupying interleave slot i; slot 0 owns
	// the code's LSB (most selective dimension first).
	order []int
	slot  []int // slot[dim] = interleave slot of dimension dim
}

// NewEncoder builds an encoder for points whose dimension dim spans
// [mins[dim], maxs[dim]]. order lists dimensions from most to least
// selective; it must be a permutation of [0, len(mins)).
func NewEncoder(mins, maxs []int64, order []int) *Encoder {
	d := len(mins)
	e := &Encoder{
		d:       d,
		bitsPer: uint(64 / d),
		mins:    append([]int64(nil), mins...),
		shifts:  make([]uint, d),
		order:   append([]int(nil), order...),
		slot:    make([]int, d),
	}
	for s, dim := range e.order {
		e.slot[dim] = s
	}
	for dim := 0; dim < d; dim++ {
		span := uint64(maxs[dim]) - uint64(mins[dim])
		need := uint(bits.Len64(span))
		if need > e.bitsPer {
			e.shifts[dim] = need - e.bitsPer
		}
	}
	return e
}

// Dims returns the number of dimensions.
func (e *Encoder) Dims() int { return e.d }

// BitsPerDim returns the number of code bits per dimension.
func (e *Encoder) BitsPerDim() uint { return e.bitsPer }

// Part quantizes one coordinate to its bitsPer-bit code contribution.
func (e *Encoder) Part(dim int, v int64) uint64 {
	return (uint64(v) - uint64(e.mins[dim])) >> e.shifts[dim]
}

// Encode maps a point (one value per dimension) to its Z-order code.
func (e *Encoder) Encode(point []int64) uint64 {
	var z uint64
	for dim, v := range point {
		part := e.Part(dim, v)
		s := uint(e.slot[dim])
		for b := uint(0); b < e.bitsPer; b++ {
			z |= ((part >> b) & 1) << (b*uint(e.d) + s)
		}
	}
	return z
}

// EncodeParts maps already-quantized parts (indexed by dimension) to a code.
func (e *Encoder) EncodeParts(parts []uint64) uint64 {
	var z uint64
	for dim, part := range parts {
		s := uint(e.slot[dim])
		for b := uint(0); b < e.bitsPer; b++ {
			z |= ((part >> b) & 1) << (b*uint(e.d) + s)
		}
	}
	return z
}

// DecodePart extracts dimension dim's quantized part from a code.
func (e *Encoder) DecodePart(z uint64, dim int) uint64 {
	s := uint(e.slot[dim])
	var part uint64
	for b := uint(0); b < e.bitsPer; b++ {
		part |= ((z >> (b*uint(e.d) + s)) & 1) << b
	}
	return part
}

// totalBits is the number of meaningful bits in a code.
func (e *Encoder) totalBits() uint { return e.bitsPer * uint(e.d) }

// InRect reports whether code z lies inside the rectangle whose corners have
// codes derived from the quantized bounds loParts/hiParts (per dimension,
// inclusive).
func (e *Encoder) InRect(z uint64, loParts, hiParts []uint64) bool {
	for dim := 0; dim < e.d; dim++ {
		p := e.DecodePart(z, dim)
		if p < loParts[dim] || p > hiParts[dim] {
			return false
		}
	}
	return true
}

// BigMin returns the smallest Z-order code strictly greater than z that lies
// within the rectangle [lo, hi] (codes of the rectangle's corners), and ok =
// false when no such code exists. This is the UB-tree "skip ahead" primitive
// (Appendix A).
func (e *Encoder) BigMin(z, lo, hi uint64) (bigmin uint64, ok bool) {
	// Work on the successor so "strictly greater" reduces to ">=".
	if z == ^uint64(0) {
		return 0, false
	}
	z++
	if tb := e.totalBits(); tb < 64 && z >= uint64(1)<<tb {
		// The successor overflows the code space: nothing left.
		return 0, false
	}
	var haveBig bool
	minv, maxv := lo, hi
	total := int(e.totalBits())
	for p := total - 1; p >= 0; p-- {
		bit := uint64(1) << uint(p)
		zb := z & bit
		lb := minv & bit
		hb := maxv & bit
		switch {
		case zb == 0 && lb == 0 && hb == 0:
			// continue
		case zb == 0 && lb == 0 && hb != 0:
			bigmin, haveBig = e.loadOnes(minv, uint(p)), true
			maxv = e.loadZeros(maxv, uint(p))
		case zb == 0 && lb != 0 && hb != 0:
			return minv, true
		case zb != 0 && lb == 0 && hb == 0:
			return bigmin, haveBig
		case zb != 0 && lb == 0 && hb != 0:
			minv = e.loadOnes(minv, uint(p))
		case zb != 0 && lb != 0 && hb != 0:
			// continue
		default:
			// lb != 0 && hb == 0 cannot happen for a valid rectangle.
			return bigmin, haveBig
		}
	}
	// z itself lies within [minv, maxv] projections: it is in the rect.
	return z, true
}

// loadOnes sets bit p to 1 and zeroes all lower bits of the same dimension
// ("10000..." load in the BIGMIN literature).
func (e *Encoder) loadOnes(code uint64, p uint) uint64 {
	return (code | (uint64(1) << p)) &^ e.lowerSameDimMask(p)
}

// loadZeros sets bit p to 0 and sets all lower bits of the same dimension
// ("01111..." load).
func (e *Encoder) loadZeros(code uint64, p uint) uint64 {
	return (code &^ (uint64(1) << p)) | e.lowerSameDimMask(p)
}

// lowerSameDimMask returns a mask of code bits strictly below p that belong
// to the same dimension as bit p.
func (e *Encoder) lowerSameDimMask(p uint) uint64 {
	var m uint64
	d := uint(e.d)
	for q := p % d; q < p; q += d {
		m |= uint64(1) << q
	}
	return m
}
