package zcurve

import (
	"math/rand"
	"testing"
)

func seqOrder(d int) []int {
	o := make([]int, d)
	for i := range o {
		o[i] = i
	}
	return o
}

func TestEncodeDecodeRoundtrip(t *testing.T) {
	for _, d := range []int{1, 2, 3, 6, 7} {
		mins := make([]int64, d)
		maxs := make([]int64, d)
		for i := range maxs {
			maxs[i] = 1000
		}
		e := NewEncoder(mins, maxs, seqOrder(d))
		rng := rand.New(rand.NewSource(int64(d)))
		point := make([]int64, d)
		for trial := 0; trial < 200; trial++ {
			for i := range point {
				point[i] = rng.Int63n(1001)
			}
			z := e.Encode(point)
			for dim := range point {
				if got, want := e.DecodePart(z, dim), e.Part(dim, point[dim]); got != want {
					t.Fatalf("d=%d dim=%d: decode %d, want %d", d, dim, got, want)
				}
			}
		}
	}
}

func TestEncodeOrderControlsLSB(t *testing.T) {
	// With order {1, 0}, dimension 1 owns the LSB.
	e := NewEncoder([]int64{0, 0}, []int64{3, 3}, []int{1, 0})
	if z := e.Encode([]int64{0, 1}); z&1 != 1 {
		t.Fatalf("dim 1 should own LSB, code = %b", z)
	}
	if z := e.Encode([]int64{1, 0}); z&2 != 2 {
		t.Fatalf("dim 0 should own bit 1, code = %b", z)
	}
}

func TestEncodeMonotoneInEachDim(t *testing.T) {
	e := NewEncoder([]int64{0, 0}, []int64{255, 255}, seqOrder(2))
	// Increasing one coordinate (others fixed) must not decrease the code.
	for x := int64(0); x < 255; x++ {
		if e.Encode([]int64{x, 7}) >= e.Encode([]int64{x + 1, 7}) {
			t.Fatalf("code not increasing in dim 0 at %d", x)
		}
	}
}

func TestEncodeWideDomainsQuantize(t *testing.T) {
	// Domains wider than 2^(64/d) must quantize without overflow.
	d := 4
	mins := []int64{-1 << 40, 0, -5, 1 << 30}
	maxs := []int64{1 << 40, 1 << 50, 5, 1<<30 + 100}
	e := NewEncoder(mins, maxs, seqOrder(d))
	for dim := 0; dim < d; dim++ {
		lo := e.Part(dim, mins[dim])
		hi := e.Part(dim, maxs[dim])
		if lo > hi {
			t.Fatalf("dim %d: quantized lo %d > hi %d", dim, lo, hi)
		}
		if hi >= 1<<e.BitsPerDim() {
			t.Fatalf("dim %d: quantized hi %d exceeds %d bits", dim, hi, e.BitsPerDim())
		}
	}
}

func bruteBigMin(e *Encoder, z uint64, loParts, hiParts []uint64) (uint64, bool) {
	d := e.Dims()
	best := ^uint64(0)
	found := false
	// Enumerate the rectangle (small in tests).
	var rec func(dim int, parts []uint64)
	parts := make([]uint64, d)
	rec = func(dim int, parts []uint64) {
		if dim == d {
			code := e.EncodeParts(parts)
			if code > z && code < best {
				best, found = code, true
			}
			return
		}
		for p := loParts[dim]; p <= hiParts[dim]; p++ {
			parts[dim] = p
			rec(dim+1, parts)
		}
	}
	rec(0, parts)
	return best, found
}

func TestBigMinBruteForce2D(t *testing.T) {
	e := NewEncoder([]int64{0, 0}, []int64{31, 31}, seqOrder(2))
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 500; trial++ {
		lo := []uint64{uint64(rng.Intn(28)), uint64(rng.Intn(28))}
		hi := []uint64{lo[0] + uint64(rng.Intn(4)), lo[1] + uint64(rng.Intn(4))}
		zlo := e.EncodeParts(lo)
		zhi := e.EncodeParts(hi)
		z := uint64(rng.Intn(1 << 10))
		want, wantOK := bruteBigMin(e, z, lo, hi)
		got, ok := e.BigMin(z, zlo, zhi)
		if ok != wantOK || (ok && got != want) {
			t.Fatalf("BigMin(%d) = (%d,%v), want (%d,%v) rect lo=%v hi=%v",
				z, got, ok, want, wantOK, lo, hi)
		}
	}
}

func TestBigMinBruteForce3D(t *testing.T) {
	e := NewEncoder([]int64{0, 0, 0}, []int64{7, 7, 7}, []int{2, 0, 1})
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 300; trial++ {
		lo := make([]uint64, 3)
		hi := make([]uint64, 3)
		for i := range lo {
			lo[i] = uint64(rng.Intn(6))
			hi[i] = lo[i] + uint64(rng.Intn(2))
		}
		zlo := e.EncodeParts(lo)
		zhi := e.EncodeParts(hi)
		z := uint64(rng.Intn(1 << 9))
		want, wantOK := bruteBigMin(e, z, lo, hi)
		got, ok := e.BigMin(z, zlo, zhi)
		if ok != wantOK || (ok && got != want) {
			t.Fatalf("BigMin(%d) = (%d,%v), want (%d,%v)", z, got, ok, want, wantOK)
		}
	}
}

func TestBigMinResultInsideRect(t *testing.T) {
	e := NewEncoder([]int64{0, 0}, []int64{1023, 1023}, seqOrder(2))
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 1000; trial++ {
		lo := []uint64{uint64(rng.Intn(1000)), uint64(rng.Intn(1000))}
		hi := []uint64{lo[0] + uint64(rng.Intn(20)), lo[1] + uint64(rng.Intn(20))}
		z := uint64(rng.Int63n(1 << 20))
		got, ok := e.BigMin(z, e.EncodeParts(lo), e.EncodeParts(hi))
		if !ok {
			continue
		}
		if got <= z {
			t.Fatalf("BigMin %d not strictly greater than %d", got, z)
		}
		if !e.InRect(got, lo, hi) {
			t.Fatalf("BigMin %d outside rect lo=%v hi=%v", got, lo, hi)
		}
	}
}

func TestBigMinExhaustedSpace(t *testing.T) {
	e := NewEncoder([]int64{0, 0}, []int64{3, 3}, seqOrder(2))
	lo := []uint64{0, 0}
	hi := []uint64{3, 3}
	zmax := e.EncodeParts(hi)
	if _, ok := e.BigMin(zmax, e.EncodeParts(lo), zmax); ok {
		t.Fatal("no code can follow the rectangle's max")
	}
	if _, ok := e.BigMin(^uint64(0), e.EncodeParts(lo), zmax); ok {
		t.Fatal("BigMin past the last representable code must fail")
	}
}

func TestInRect(t *testing.T) {
	e := NewEncoder([]int64{0, 0}, []int64{15, 15}, seqOrder(2))
	lo := []uint64{2, 3}
	hi := []uint64{5, 9}
	in := e.EncodeParts([]uint64{3, 7})
	out := e.EncodeParts([]uint64{6, 7})
	if !e.InRect(in, lo, hi) || e.InRect(out, lo, hi) {
		t.Fatal("InRect misclassified")
	}
}

func BenchmarkEncode(b *testing.B) {
	d := 6
	mins := make([]int64, d)
	maxs := make([]int64, d)
	for i := range maxs {
		maxs[i] = 1 << 40
	}
	e := NewEncoder(mins, maxs, seqOrder(d))
	point := []int64{5, 1 << 20, 1 << 30, 42, 1 << 39, 7}
	b.ResetTimer()
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += e.Encode(point)
	}
	_ = sink
}

func BenchmarkBigMin(b *testing.B) {
	e := NewEncoder([]int64{0, 0, 0, 0}, []int64{1 << 15, 1 << 15, 1 << 15, 1 << 15}, seqOrder(4))
	lo := []uint64{100, 200, 300, 400}
	hi := []uint64{200, 300, 400, 500}
	zlo := e.EncodeParts(lo)
	zhi := e.EncodeParts(hi)
	b.ResetTimer()
	var sink uint64
	for i := 0; i < b.N; i++ {
		v, _ := e.BigMin(uint64(i)%zhi, zlo, zhi)
		sink += v
	}
	_ = sink
}
