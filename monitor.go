package flood

import (
	"sync"
	"time"
)

// Monitor implements the workload-shift detection sketched in §8 ("Shifting
// workloads"): it tracks query cost over a sliding window and signals when
// the current layout has drifted far enough from its expected performance
// that relearning is worthwhile. The reference cost is the cost model's
// prediction when available (Build), otherwise the first full window
// observed after construction.
//
// A Monitor is safe for concurrent use: Record may be called from many
// goroutines at once (the normal situation when queries are served through
// ExecuteBatch or from concurrent request handlers). The sliding window is
// guarded by a mutex, every Record observes a consistent window, and at
// least one Record in any window-sized burst that pushes the average over
// the threshold reports true.
//
// Monitor is the detection half of the adaptive lifecycle; AdaptiveIndex
// owns the full loop (sample the workload, detect drift, relearn in the
// background, swap atomically), so serving code rarely constructs one
// directly:
//
//	a := flood.NewAdaptiveIndex(idx, nil) // monitors, relearns, swaps
//	defer a.Close()
//	for q := range queries {
//	    st := a.Execute(q, agg) // drift-checked; relearns happen in the background
//	    _ = st
//	}
//
// Construct a Monitor by hand only to drive a custom relearn policy.
type Monitor struct {
	mu        sync.Mutex
	window    []time.Duration
	sum       time.Duration // running total of window (O(1) Record)
	next      int
	filled    bool
	reference float64 // ns
	factor    float64
}

// NewMonitor tracks idx over a sliding window of windowSize queries; Record
// returns true once the window's average query time exceeds factor times
// the reference cost.
func NewMonitor(idx *Flood, windowSize int, factor float64) *Monitor {
	if windowSize < 1 {
		windowSize = 1
	}
	if factor <= 1 {
		factor = 2
	}
	m := &Monitor{window: make([]time.Duration, windowSize), factor: factor}
	if idx != nil && idx.PredictedCost() > 0 {
		m.reference = idx.PredictedCost()
	}
	return m
}

// Record adds one query's stats and reports whether the layout should be
// relearned. It never fires before a full window has been observed.
func (m *Monitor) Record(st Stats) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.sum += st.Total - m.window[m.next]
	m.window[m.next] = st.Total
	m.next++
	if m.next == len(m.window) {
		m.next = 0
		if !m.filled {
			m.filled = true
			if m.reference == 0 {
				m.reference = m.windowAvg()
				return false
			}
		}
	}
	if !m.filled || m.reference == 0 {
		return false
	}
	return m.windowAvg() > m.factor*m.reference
}

// Reference returns the baseline average query time in nanoseconds (0 until
// established).
func (m *Monitor) Reference() float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.reference
}

// WindowAverage returns the current window's average query time in
// nanoseconds (only meaningful once a full window has been recorded).
func (m *Monitor) WindowAverage() float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.windowAvg()
}

func (m *Monitor) windowAvg() float64 {
	return float64(m.sum.Nanoseconds()) / float64(len(m.window))
}
