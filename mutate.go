// Mutation API shared by every facade: tombstone deletes, delete-by-query,
// and update-as-delete-plus-insert. See docs/MUTATIONS.md for the design.
//
// Deletion is logical everywhere — a word-packed bitmap marks dead rows and
// the scan kernel masks them with one AND-NOT per block word — and physical
// compaction piggybacks on the rebuilds the insert path already performs
// (DeltaIndex.Merge, the adaptive relearn/merge cycle). Row identity follows
// Select's global id space: base rows tile first, buffered/side-log rows
// after them.

package flood

import (
	"encoding/binary"
	"fmt"

	"flood/internal/query"
	"flood/internal/wire"
)

// Assignment sets one column to a literal value, as part of an Update. The
// value is in storage encoding: for typed schemas, encode floats and strings
// with the schema first (the floodsql layer does this from SQL literals).
type Assignment struct {
	// Col is the column index being assigned.
	Col int
	// Value is the new encoded value.
	Value int64
}

// Deleter is implemented by every index facade that supports tombstone
// deletion (Flood, DeltaIndex, AdaptiveIndex, DurableIndex). Delete removes
// rows matching a conjunctive query; the returned count is the number of
// rows newly deleted.
type Deleter interface {
	Delete(q Query) (int64, error)
}

// Inserter is implemented by facades that accept new rows after build
// (DeltaIndex, AdaptiveIndex, DurableIndex — not the immutable Flood). Insert
// appends one encoded row in physical column order; callers of floodsql's
// INSERT route through it.
type Inserter interface {
	Insert(row []int64) error
}

// Updater is implemented by facades that support in-place updates
// (DeltaIndex, AdaptiveIndex, DurableIndex — not the immutable Flood, which
// has no insert path). Update rewrites every row matching q with the given
// assignments applied; it is executed as a tombstone delete plus re-insert
// of the modified copies.
type Updater interface {
	Update(q Query, set []Assignment) (int64, error)
}

// Delete tombstones every live row matching q and returns how many rows were
// newly deleted. The index's physical layout is untouched — deleted rows are
// masked out of every subsequent query (Execute, Select, KNN, aggregates)
// and compacted away on the next Rebuild. Queries already in flight keep the
// snapshot they captured at scan setup. Single-writer: serialize Delete
// calls with each other, not with readers.
func (f *Flood) Delete(q Query) (int64, error) {
	return int64(f.idx.DeleteWhere(q)), nil
}

// DeleteRows tombstones rows by their Select ids (physical rows, for a plain
// Flood index) and returns how many were newly deleted. Ids already deleted
// or out of range are skipped.
func (f *Flood) DeleteRows(ids []int64) (int64, error) {
	rows := make([]int, 0, len(ids))
	for _, id := range ids {
		rows = append(rows, int(id))
	}
	return int64(f.idx.DeleteRows(rows)), nil
}

// Deleted returns the number of tombstoned (not yet compacted) rows.
func (f *Flood) Deleted() int { return f.idx.Deleted() }

// LiveRows returns the number of rows queries can observe: physical rows
// minus tombstoned rows.
func (f *Flood) LiveRows() int { return f.idx.LiveRows() }

// Rebuild returns a fresh index over f's live rows with the same layout:
// tombstoned rows are physically discarded and the new index starts with an
// empty tombstone set. f is not modified.
func (f *Flood) Rebuild() (*Flood, error) {
	idx, err := f.idx.Rebuild(nil)
	if err != nil {
		return nil, err
	}
	return &Flood{idx: idx, result: f.result, model: f.model, schema: f.schema}, nil
}

// applyAssignments validates set against the column count and returns a
// modified copy of row.
func applyAssignments(row []int64, set []Assignment, cols int) ([]int64, error) {
	out := make([]int64, len(row))
	copy(out, row)
	for _, a := range set {
		if a.Col < 0 || a.Col >= cols {
			return nil, fmt.Errorf("flood: update assigns column %d, table has %d", a.Col, cols)
		}
		out[a.Col] = a.Value
	}
	return out, nil
}

// matchColumns reports whether row i of the column-major data satisfies q.
// It is the brute-force matcher for buffered rows (delta buffer, adaptive
// side log), where no index structure exists.
func matchColumns(q query.Query, cols [][]int64, i int) bool {
	for c, r := range q.Ranges {
		if r.Present {
			if v := cols[c][i]; v < r.Min || v > r.Max {
				return false
			}
		}
	}
	return true
}

// WAL record framing. Insert records predate deletion support and are raw
// little-endian rows — 8*NumCols bytes, no tag. Delete records are tagged:
//
//	walTagDelete (1 byte) | count (u32 LE) | count*NumCols values (8 bytes each)
//
// A delete record's length is ≡5 (mod 8) while an insert's is ≡0, so the
// two are unambiguous for any column count and old logs replay unchanged.
// Deletes log resolved row VALUES, never physical row ids: physical
// placement changes across rebuilds (checkpoint replay rebuilds the side
// log, compaction renumbers base rows), but "delete one live row equal to
// this tuple" replays identically against any equivalent state.
const walTagDelete = 0xD7

// encodeWALDelete serializes a batch of deleted row tuples as a tagged WAL
// record payload.
func encodeWALDelete(rows [][]int64) []byte {
	cols := 0
	if len(rows) > 0 {
		cols = len(rows[0])
	}
	buf := make([]byte, 5+8*len(rows)*cols)
	buf[0] = walTagDelete
	binary.LittleEndian.PutUint32(buf[1:5], uint32(len(rows)))
	at := 5
	for _, row := range rows {
		for _, v := range row {
			binary.LittleEndian.PutUint64(buf[at:], uint64(v))
			at += 8
		}
	}
	return buf
}

// decodeWALDelete parses a tagged delete record back into row tuples,
// validating the count and per-row width.
func decodeWALDelete(payload []byte, wantCols int) ([][]int64, error) {
	if len(payload) < 5 || payload[0] != walTagDelete {
		return nil, fmt.Errorf("flood: wal record is not a delete: %w", wire.ErrChecksum)
	}
	n := int(binary.LittleEndian.Uint32(payload[1:5]))
	if len(payload) != 5+8*n*wantCols {
		return nil, fmt.Errorf("flood: wal delete record has %d bytes for %d rows of %d columns: %w",
			len(payload), n, wantCols, wire.ErrChecksum)
	}
	rows := make([][]int64, n)
	at := 5
	for i := range rows {
		row := make([]int64, wantCols)
		for c := range row {
			row[c] = int64(binary.LittleEndian.Uint64(payload[at:]))
			at += 8
		}
		rows[i] = row
	}
	return rows, nil
}

// isWALDelete reports whether a WAL payload is a tagged delete record rather
// than a raw insert row. Insert rows are always a multiple of 8 bytes;
// delete records never are.
func isWALDelete(payload []byte) bool {
	return len(payload) >= 5 && len(payload)%8 == 5 && payload[0] == walTagDelete
}

// tupleKey packs a row's values into a comparable map key, for multiset
// matching of value-logged deletions (see deleteTuples).
func tupleKey(row []int64) string {
	b := make([]byte, 8*len(row))
	for i, v := range row {
		binary.LittleEndian.PutUint64(b[8*i:], uint64(v))
	}
	return string(b)
}

var (
	_ Deleter = (*Flood)(nil)
)
