package flood

import (
	"bytes"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"

	"flood/internal/faultfs"
	"flood/internal/wal"
)

// survivingInserts counts recovered inserted rows and fails the test unless
// they are exactly the acknowledged prefix {0..total-1} minus the deleted
// indices (checked via the ts-sum, as recoveredInserts does for prefixes).
func survivingInserts(t *testing.T, idx Index, total int, deleted []int) int64 {
	t.Helper()
	q := NewQuery(4).WithRange(0, insertBase, insertBase+1_000_000)
	cnt, sum := NewCount(), NewSum(0)
	idx.Execute(q, cnt)
	idx.Execute(q, sum)
	j := int64(total - len(deleted))
	wantSum := int64(total)*insertBase + int64(total)*int64(total-1)/2
	for _, i := range deleted {
		wantSum -= int64(insertBase + i)
	}
	if cnt.Result() != j || sum.Result() != wantSum {
		t.Fatalf("surviving inserts: count %d ts-sum %d, want count %d ts-sum %d",
			cnt.Result(), sum.Result(), j, wantSum)
	}
	return j
}

// deleteInsertedRow removes the inserted row carrying ts = insertBase+i by
// exact-match predicate, failing unless exactly one row was affected.
func deleteInsertedRow(t *testing.T, d Deleter, i int) {
	t.Helper()
	n, err := d.Delete(NewQuery(4).WithEquals(0, int64(insertBase+i)))
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("delete of inserted row %d affected %d rows, want 1", i, n)
	}
}

// TestDeleteSurvivesCrash is the headline durability property for the
// mutation path: acknowledged deletes — of base rows and of WAL-logged
// inserts alike — survive kill -9 and every subsequent checkpoint cycle.
func TestDeleteSurvivesCrash(t *testing.T) {
	fx := newTypedFixture(t, 64, 51)
	idx, err := BuildWithLayout(fx.tbl, fixtureLayout(fx), &Options{Schema: fx.schema})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	d, err := CreateDurable(dir, idx, &DurableOptions{Sync: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	const inserts = 20
	for i := 0; i < inserts; i++ {
		if err := d.Insert(insertedRow(fx, i)); err != nil {
			t.Fatal(err)
		}
	}
	// Delete two inserted rows and a slice of the base data.
	deleteInsertedRow(t, d, 3)
	deleteInsertedRow(t, d, 7)
	baseDel, err := d.Delete(NewQuery(4).WithRange(0, 0, 999))
	if err != nil {
		t.Fatal(err)
	}
	wantBase := baseRows(d)
	wantLive := int64(d.LiveRows())

	// kill -9: abandon the handle; every acked op is on disk (SyncAlways).
	re, rep, err := OpenDurable(copyDir(t, dir), nil)
	if err != nil {
		t.Fatalf("recovery: %v (report %+v)", err, rep)
	}
	defer re.Close()
	survivingInserts(t, re, inserts, []int{3, 7})
	for _, i := range []int{3, 7} {
		agg := NewCount()
		re.Execute(NewQuery(4).WithEquals(0, int64(insertBase+i)), agg)
		if agg.Result() != 0 {
			t.Fatalf("deleted insert %d resurrected after crash", i)
		}
	}
	if got := baseRows(re); got != wantBase {
		t.Fatalf("recovered %d base rows, want %d (%d deleted)", got, wantBase, baseDel)
	}
	if got := int64(re.LiveRows()); got != wantLive {
		t.Fatalf("recovered LiveRows = %d, want %d", got, wantLive)
	}

	// The tombstones also round-trip a clean checkpoint + reopen.
	if err := re.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := re.Close(); err != nil {
		t.Fatal(err)
	}
	re2, _, err := OpenDurable(copyDir(t, dir), nil)
	if err != nil {
		t.Fatal(err)
	}
	re2.Close()
}

// TestDeleteKillPoints crashes a checkpoint at every stage boundary with
// acknowledged deletes in flight — marked after the previous checkpoint, so
// they live only in WAL records and tombstone bitmaps — and verifies every
// one survives recovery at every kill point.
func TestDeleteKillPoints(t *testing.T) {
	for _, stage := range []string{"rotated", "old-closed", "snapshot"} {
		t.Run(stage, func(t *testing.T) {
			fx := newTypedFixture(t, 64, 52)
			idx, err := BuildWithLayout(fx.tbl, fixtureLayout(fx), &Options{Schema: fx.schema})
			if err != nil {
				t.Fatal(err)
			}
			dir := t.TempDir()
			d, err := CreateDurable(dir, idx, &DurableOptions{Sync: SyncAlways})
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < 10; i++ {
				if err := d.Insert(insertedRow(fx, i)); err != nil {
					t.Fatal(err)
				}
			}
			if err := d.Checkpoint(); err != nil { // deletes below postdate this
				t.Fatal(err)
			}
			for i := 10; i < 20; i++ {
				if err := d.Insert(insertedRow(fx, i)); err != nil {
					t.Fatal(err)
				}
			}
			// One checkpointed insert, one fresh insert, some base rows.
			deleteInsertedRow(t, d, 4)
			deleteInsertedRow(t, d, 14)
			if _, err := d.Delete(NewQuery(4).WithRange(0, 0, 999)); err != nil {
				t.Fatal(err)
			}
			wantBase := baseRows(d)
			wantLive := int64(d.LiveRows())

			d.SetCrashPoint(func(s string) {
				if s == stage {
					panic("crash:" + stage)
				}
			})
			func() {
				defer func() {
					if recover() == nil {
						t.Fatal("crash point did not fire")
					}
				}()
				d.Checkpoint() //nolint:errcheck // panics by design
			}()

			re, rep, err := OpenDurable(dir, nil)
			if err != nil {
				t.Fatalf("recovery after crash at %q: %v (report %+v)", stage, err, rep)
			}
			defer re.Close()
			survivingInserts(t, re, 20, []int{4, 14})
			for _, i := range []int{4, 14} {
				agg := NewCount()
				re.Execute(NewQuery(4).WithEquals(0, int64(insertBase+i)), agg)
				if agg.Result() != 0 {
					t.Fatalf("crash at %q: deleted insert %d resurrected", stage, i)
				}
			}
			if got := baseRows(re); got != wantBase {
				t.Fatalf("crash at %q: %d base rows, want %d", stage, got, wantBase)
			}
			if got := int64(re.LiveRows()); got != wantLive {
				t.Fatalf("crash at %q: LiveRows = %d, want %d", stage, got, wantLive)
			}
		})
	}
}

// TestTornWALDeleteRecord truncates the live WAL segment at every byte
// through a delete record's region: recovery must never panic and must land
// on a clean prefix — the delete fully applied or fully absent, with every
// earlier acknowledged operation intact.
func TestTornWALDeleteRecord(t *testing.T) {
	fx := newTypedFixture(t, 48, 53)
	idx, err := BuildWithLayout(fx.tbl, fixtureLayout(fx), &Options{Schema: fx.schema})
	if err != nil {
		t.Fatal(err)
	}
	master := t.TempDir()
	d, err := CreateDurable(master, idx, &DurableOptions{Sync: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	const inserts = 6
	for i := 0; i < inserts; i++ {
		if err := d.Insert(insertedRow(fx, i)); err != nil {
			t.Fatal(err)
		}
	}
	seg := filepath.Join(master, wal.SegmentName(1))
	fi, err := os.Stat(seg)
	if err != nil {
		t.Fatal(err)
	}
	preDelete := fi.Size() // the delete record occupies [preDelete, postDelete)
	deleteInsertedRow(t, d, 2)
	fi, err = os.Stat(seg)
	if err != nil {
		t.Fatal(err)
	}
	postDelete := fi.Size()
	if postDelete <= preDelete {
		t.Fatalf("delete wrote no WAL record (%d -> %d bytes)", preDelete, postDelete)
	}

	for cut := preDelete; cut <= postDelete; cut++ {
		dir := copyDir(t, master)
		if err := faultfs.TruncateFile(filepath.Join(dir, wal.SegmentName(1)), cut); err != nil {
			t.Fatal(err)
		}
		re, _, err := OpenDurable(dir, nil)
		if err != nil {
			if !corruptionTyped(err) {
				t.Fatalf("cut at %d: untyped error %v", cut, err)
			}
			continue
		}
		agg := NewCount()
		re.Execute(NewQuery(4).WithEquals(0, int64(insertBase+2)), agg)
		gone := agg.Result() == 0
		if gone != (cut == postDelete) {
			t.Fatalf("cut at %d (record spans [%d,%d)): delete applied=%v, want fully-%s",
				cut, preDelete, postDelete, gone, map[bool]string{true: "applied", false: "absent"}[cut == postDelete])
		}
		if gone {
			survivingInserts(t, re, inserts, []int{2})
		} else {
			survivingInserts(t, re, inserts, nil)
		}
		re.Close()
	}
}

// TestSnapshotTombSectionDamageIsTypedError pins the hard-error contract:
// tombstones are not reconstructible, so — unlike the models or bitmap-index
// sections, which degrade gracefully — damage confined to the tomb section
// must fail the load with a typed error or load an identical index, never
// silently resurrect deleted rows.
func TestSnapshotTombSectionDamageIsTypedError(t *testing.T) {
	fx := newTypedFixture(t, 64, 54)
	idx, err := BuildWithLayout(fx.tbl, fixtureLayout(fx), &Options{Schema: fx.schema})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := idx.Delete(NewQuery(4).WithRange(0, 0, 40_000)); err != nil {
		t.Fatal(err)
	}
	if idx.Deleted() == 0 {
		t.Fatal("fixture deleted nothing; widen the predicate")
	}
	var buf bytes.Buffer
	if err := idx.Save(&buf); err != nil {
		t.Fatal(err)
	}
	snap := buf.Bytes()
	at := bytes.Index(snap, []byte(sectionTomb))
	if at < 0 {
		t.Fatal("snapshot has no tomb section despite live tombstones")
	}
	wantLive := int64(idx.LiveRows())

	for off := at; off < len(snap); off += corruptionStride {
		loaded, err := Load(bytes.NewReader(faultfs.Flip(snap, off)))
		if err != nil {
			if !corruptionTyped(err) {
				t.Fatalf("flip at %d: untyped error %v", off, err)
			}
			continue
		}
		agg := NewCount()
		loaded.Execute(NewQuery(4), agg)
		if agg.Result() != wantLive {
			t.Fatalf("flip at %d: loaded index counts %d rows, want %d — deleted rows resurrected",
				off, agg.Result(), wantLive)
		}
	}
}

// TestDeleteConcurrentWithRelearnAndCheckpoint races four deleting mutators
// against query loops while the index relearns, merges, and checkpoints
// (runs in the CI race matrix). Observed epochs must be monotonic, observed
// counts non-increasing (a deleted row must never transiently resurrect
// across an epoch swap), and the final state — served and recovered — must
// account for every acknowledged delete.
func TestDeleteConcurrentWithRelearnAndCheckpoint(t *testing.T) {
	fx := newTypedFixture(t, 256, 55)
	idx, err := BuildWithLayout(fx.tbl, fixtureLayout(fx), &Options{Schema: fx.schema})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	d, err := CreateDurable(dir, idx, &DurableOptions{Sync: SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	const workers, per = 4, 30
	for i := 0; i < workers*per; i++ {
		if err := d.Insert(insertedRow(fx, i)); err != nil {
			t.Fatal(err)
		}
	}
	a := d.Adaptive()
	insertRange := NewQuery(4).WithRange(0, insertBase, insertBase+1_000_000)
	// Warm the query sample so forced relearns have a workload to train on.
	for i := 0; i < 8; i++ {
		d.Execute(insertRange, NewCount())
	}

	var deleted atomic.Int64
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				n, err := d.Delete(NewQuery(4).WithEquals(0, int64(insertBase+w*per+i)))
				if err != nil {
					t.Errorf("worker %d: %v", w, err)
					return
				}
				deleted.Add(n)
			}
		}()
	}
	// Readers: epochs monotonic, counts in the delete region non-increasing.
	var readers sync.WaitGroup
	for r := 0; r < 2; r++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			lastEpoch := int64(-1)
			lastCount := int64(workers*per + 1)
			for {
				select {
				case <-stop:
					return
				default:
				}
				if ep := a.Epoch(); ep < lastEpoch {
					t.Errorf("epoch went backwards: %d after %d", ep, lastEpoch)
					return
				} else {
					lastEpoch = ep
				}
				agg := NewCount()
				d.Execute(insertRange, agg)
				if got := agg.Result(); got > lastCount {
					t.Errorf("count increased %d -> %d: deleted rows resurrected", lastCount, got)
					return
				} else {
					lastCount = got
				}
			}
		}()
	}
	// Lifecycle churn: forced relearns, merges, and checkpoints mid-flight.
	for i := 0; i < 6; i++ {
		if i%2 == 0 {
			a.TriggerRelearn()
		} else {
			a.TriggerMerge()
		}
		a.Wait()
		if err := d.Checkpoint(); err != nil {
			t.Error(err)
		}
	}
	wg.Wait()
	close(stop)
	readers.Wait()
	a.Wait()

	if got := deleted.Load(); got != workers*per {
		t.Fatalf("acked %d deletes, want %d", got, workers*per)
	}
	agg := NewCount()
	d.Execute(insertRange, agg)
	if agg.Result() != 0 {
		t.Fatalf("%d inserted rows survived full deletion", agg.Result())
	}
	if err := d.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	re, _, err := OpenDurable(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	agg.Reset()
	re.Execute(insertRange, agg)
	if agg.Result() != 0 {
		t.Fatalf("recovery resurrected %d deleted rows", agg.Result())
	}
	if got := baseRows(re); got != 256 {
		t.Fatalf("base data damaged: %d of 256 rows", got)
	}
}
