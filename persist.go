package flood

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"syscall"

	"flood/internal/core"
	"flood/internal/optimizer"
	"flood/internal/wire"
)

// Typed corruption errors, re-exported from the wire format so callers can
// classify Load failures with errors.Is without importing internal packages.
var (
	// ErrTruncated reports a snapshot or log that ends before a complete
	// structure.
	ErrTruncated = wire.ErrTruncated
	// ErrChecksum reports data whose checksum does not match its contents —
	// a bit flip, torn write, or foreign bytes.
	ErrChecksum = wire.ErrChecksum
	// ErrVersion reports a snapshot written by an unknown format version.
	ErrVersion = wire.ErrVersion
)

// LoadReport describes degraded-recovery decisions a Load took. A loaded
// index answers queries correctly either way; the report says whether the
// load had to pay a model retrain to get there.
type LoadReport struct {
	// Retrained is true when the snapshot's models section was damaged and
	// the learned models were rebuilt from the intact data sections.
	Retrained bool
	// Warnings describes each degraded-recovery decision.
	Warnings []string
}

// Save serializes the built index — layout, reordered data, all learned
// models, the attached typed schema (if any), and any tombstoned deletions —
// as a checksummed v2 snapshot. The cost model and predicted cost are not
// persisted: a loaded index answers queries immediately, but relearning
// needs a model (see Calibrate).
func (f *Flood) Save(w io.Writer) error {
	var extra []core.ExtraSection
	if f.schema != nil {
		extra = append(extra, core.ExtraSection{Tag: sectionSchema, Encode: f.schema.encodeSchema})
	}
	if tomb := f.idx.Tombstones(); tomb.Dead() > 0 {
		extra = append(extra, core.ExtraSection{Tag: sectionTomb, Encode: encodeTombSection(tomb, nil)})
	}
	return f.idx.SaveSections(w, extra)
}

// Load reads an index written by Save (either format version). Corruption
// surfaces as an error wrapping ErrTruncated, ErrChecksum, or ErrVersion —
// except damage confined to the learned-models section, which Load repairs
// by retraining from the intact data (use LoadWithReport to observe that).
// A schema persisted by Save is re-attached automatically.
func Load(r io.Reader) (*Flood, error) {
	f, _, err := LoadWithReport(r)
	return f, err
}

// LoadWithReport is Load plus a report of any degraded-recovery decisions.
func LoadWithReport(r io.Reader) (*Flood, LoadReport, error) {
	res, err := core.LoadSections(r)
	if err != nil {
		return nil, LoadReport{}, err
	}
	f, err := floodFromLoadResult(res)
	if err != nil {
		return nil, LoadReport{}, err
	}
	return f, LoadReport{Retrained: res.Retrained, Warnings: res.Warnings}, nil
}

// floodFromLoadResult wraps a decoded core index in the public handle,
// re-attaching the persisted schema and tombstoned deletions if the snapshot
// carried them. A damaged tombstone section is a hard error, never a silent
// degrade: resurrecting deleted rows would be wrong answers, not slow ones.
func floodFromLoadResult(res core.LoadResult) (*Flood, error) {
	f := &Flood{idx: res.Index, result: optimizer.Result{Layout: res.Index.Layout()}}
	if payload, ok := res.Extra[sectionSchema]; ok {
		s, err := decodeSchema(payload)
		if err != nil {
			return nil, err
		}
		f.schema = s
	}
	if payload, ok := res.Extra[sectionTomb]; ok {
		tomb, _, err := decodeTombSection(payload, res.Index.Table().NumRows())
		if err != nil {
			return nil, err
		}
		if tomb != nil {
			f.idx.SetTombstones(tomb)
		}
	}
	return f, nil
}

// SaveFile writes the snapshot to path atomically: the bytes go to a
// temporary file in the same directory, which is fsynced and renamed over
// path, and the directory is fsynced so the rename itself is durable. A
// crash at any point leaves either the old file or the new one, never a
// partial mix.
func (f *Flood) SaveFile(path string) error {
	return WriteFileAtomic(path, f.Save)
}

// LoadFile reads an index from a snapshot file written by SaveFile (or any
// Save output on disk), with Load's corruption and recovery semantics.
func LoadFile(path string) (*Flood, error) {
	f, _, err := LoadFileWithReport(path)
	return f, err
}

// LoadFileWithReport is LoadFile plus the degraded-recovery report.
func LoadFileWithReport(path string) (*Flood, LoadReport, error) {
	file, err := os.Open(path)
	if err != nil {
		return nil, LoadReport{}, err
	}
	defer file.Close()
	return LoadWithReport(bufio.NewReaderSize(file, 1<<20))
}

// WriteFileAtomic writes a file through the write-temp, fsync, rename,
// fsync-directory sequence, so path holds either its previous contents or
// the complete new contents — never a torn intermediate. It is the
// building block under SaveFile and the durable checkpoint protocol.
func WriteFileAtomic(path string, write func(io.Writer) error) (err error) {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return err
	}
	defer func() {
		if err != nil {
			tmp.Close()
			os.Remove(tmp.Name())
		}
	}()
	bw := bufio.NewWriterSize(tmp, 1<<20)
	if err = write(bw); err != nil {
		return err
	}
	if err = bw.Flush(); err != nil {
		return err
	}
	if err = tmp.Sync(); err != nil {
		return err
	}
	if err = tmp.Close(); err != nil {
		return err
	}
	if err = os.Rename(tmp.Name(), path); err != nil {
		return err
	}
	return SyncDir(dir)
}

// SyncDir fsyncs a directory so preceding renames and creates in it are
// durable. Filesystems that do not support fsync on directories report
// EINVAL; that is ignored.
func SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	if err := d.Sync(); err != nil && !ignorableSyncError(err) {
		return fmt.Errorf("fsync %s: %w", dir, err)
	}
	return nil
}

// ignorableSyncError reports fsync errors that mean "not supported here"
// rather than "your data did not reach the disk".
func ignorableSyncError(err error) bool {
	return errors.Is(err, syscall.EINVAL) || errors.Is(err, syscall.ENOTSUP)
}
