package flood

import (
	"io"

	"flood/internal/core"
	"flood/internal/optimizer"
)

// Save serializes the built index (layout, reordered data, and all learned
// models) to w. The cost model and predicted cost are not persisted: a
// loaded index answers queries immediately, but relearning needs a model
// (see Calibrate).
func (f *Flood) Save(w io.Writer) error { return f.idx.Save(w) }

// Load reads an index written by Save.
func Load(r io.Reader) (*Flood, error) {
	idx, err := core.Load(r)
	if err != nil {
		return nil, err
	}
	return &Flood{idx: idx, result: optimizer.Result{Layout: idx.Layout()}}, nil
}
