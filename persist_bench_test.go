package flood

import (
	"os"
	"path/filepath"
	"testing"
)

// BenchmarkSaveLoad1M measures snapshot throughput on the shared 1M-row
// typed index: a full checksummed SaveFile (atomic write + fsync) and the
// corresponding LoadFile (CRC verification included). Recorded in
// BENCH_scan.json by `make bench`.
func BenchmarkSaveLoad1M(b *testing.B) {
	idx, _ := selectBenchSetup(b)
	path := filepath.Join(b.TempDir(), "bench.flood")
	if err := idx.SaveFile(path); err != nil {
		b.Fatal(err)
	}
	fi, err := os.Stat(path)
	if err != nil {
		b.Fatal(err)
	}

	b.Run("save", func(b *testing.B) {
		b.SetBytes(fi.Size())
		for i := 0; i < b.N; i++ {
			if err := idx.SaveFile(path); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("load", func(b *testing.B) {
		b.SetBytes(fi.Size())
		for i := 0; i < b.N; i++ {
			loaded, err := LoadFile(path)
			if err != nil {
				b.Fatal(err)
			}
			if loaded.Table().NumRows() != idx.Table().NumRows() {
				b.Fatal("row count changed across save/load")
			}
		}
	})
}
