//go:build !race

package flood

// raceEnabled reports whether the race detector is active.
const raceEnabled = false
