//go:build race

package flood

// raceEnabled reports that the race detector is active; its instrumentation
// adds heap allocations inside Execute, so allocation-count assertions must
// be skipped.
const raceEnabled = true
