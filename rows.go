package flood

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"time"

	"flood/internal/colstore"
	"flood/internal/query"
)

// Rows is a cursor over the rows matched by a Select. It is produced by the
// Select methods on Flood, DeltaIndex, and AdaptiveIndex, and by
// Schema.Select for any other index (the baselines). Iterate with Next and
// read the projected columns with the typed accessors:
//
//	rows, _ := idx.Select(q, "city", "fare")
//	defer rows.Close()
//	for rows.Next() {
//		city, fare := rows.String(0), rows.Float64(1)
//		...
//	}
//
// Accessor positions index the projection (0 = first selected column), not
// the table. The typed accessors (Float64, String, Time) need the schema the
// table was built with; without one, every column reads as raw int64.
//
// Rows are delivered in ascending physical row id — base-index rows in
// storage order, then any unmerged delta/insert-log rows — unless OrderBy
// re-ordered them. The cursor and its buffers are pooled: Close returns them
// for reuse, making steady-state sequential Select allocation-free. A Rows
// must not be used after Close, and is not safe for concurrent use.
type Rows struct {
	rc     query.RowCollector
	schema *Schema  // nil: raw int64 access only
	cols   []int    // physical column index per projection position
	names  []string // projected column names

	pos      int // index into rc ids; -1 before the first Next
	cur      *colstore.Table
	curStart int64
	curEnd   int64
	curID    int64
	closed   bool // guards double-Close from double-pooling the cursor
}

var rowsPool = sync.Pool{New: func() any { return new(Rows) }}

// colResolver maps projection names to physical column positions; *Table
// and *Schema both satisfy it (schema declaration order is physical order).
type colResolver interface {
	ColumnIndex(name string) int
	Name(i int) string
	NumCols() int
}

// getRows returns a pooled cursor with the projection resolved against
// resolve. Empty cols selects every column. Unknown column names panic —
// like a malformed regexp, a bad projection is a programming error, and the
// Select signature stays chainable.
func getRows(s *Schema, resolve colResolver, cols []string) *Rows {
	r := rowsPool.Get().(*Rows)
	r.schema = s
	r.closed = false
	r.cols = r.cols[:0]
	r.names = r.names[:0]
	if len(cols) == 0 {
		for i := 0; i < resolve.NumCols(); i++ {
			r.cols = append(r.cols, i)
			r.names = append(r.names, resolve.Name(i))
		}
	} else {
		for _, name := range cols {
			c := resolve.ColumnIndex(name)
			if c < 0 {
				r.release()
				panic(fmt.Sprintf("flood: Select: unknown column %q", name))
			}
			r.cols = append(r.cols, c)
			r.names = append(r.names, resolve.Name(c))
		}
	}
	return r
}

// finalize orders the collected ids and rewinds the cursor; called once by
// Select after execution.
func (r *Rows) finalize() {
	r.rc.Sort()
	r.Reset()
}

// Len returns the number of matched rows (0 once the cursor is closed).
func (r *Rows) Len() int {
	if r.closed {
		return 0
	}
	return r.rc.Len()
}

// Columns returns the projected column names in accessor order (nil once
// the cursor is closed). The slice is owned by the cursor; do not retain it
// past Close.
func (r *Rows) Columns() []string {
	if r.closed {
		return nil
	}
	return r.names
}

// Reset rewinds the cursor so the result set can be iterated again.
func (r *Rows) Reset() {
	r.pos = -1
	r.cur = nil
	r.curStart, r.curEnd = 0, 0
}

// Next advances to the next row, reporting whether one exists. Calling Next
// on a closed cursor returns false without touching the pooled buffers.
func (r *Rows) Next() bool {
	if r.closed {
		return false
	}
	ids := r.rc.IDs()
	r.pos++
	if r.pos >= len(ids) {
		r.cur = nil // park accessors on the zero-value path past the end
		return false
	}
	id := ids[r.pos]
	r.curID = id
	if id < r.curStart || id >= r.curEnd {
		r.seek(id)
	}
	return true
}

// seek re-resolves the cursor's source table for id.
func (r *Rows) seek(id int64) {
	for _, s := range r.rc.Sources() {
		if id >= s.Start && id < s.End {
			r.cur, r.curStart, r.curEnd = s.Table, s.Start, s.End
			return
		}
	}
	panic("flood: Rows cursor id outside every source")
}

// RowID returns the current row's global physical id (base rows first, then
// delta/insert-log rows) — useful for debugging storage locality. It is 0
// when the cursor is not positioned on a row.
func (r *Rows) RowID() int64 {
	if !r.valid() {
		return 0
	}
	return r.curID
}

// valid reports whether the cursor is positioned on a live row. It is false
// before the first Next, after Next has returned false, and after Close —
// in those states every accessor returns its zero value deterministically
// instead of reading pooled (possibly re-owned) memory.
func (r *Rows) valid() bool { return !r.closed && r.cur != nil }

// raw returns the stored int64 of projection position j for the current row.
func (r *Rows) raw(j int) int64 {
	return r.cur.Get(r.cols[j], int(r.curID-r.curStart))
}

// Int64 returns projection position j of the current row as a raw int64
// (valid for every column kind; non-integer kinds return their encoded
// physical value). It is 0 when the cursor is not positioned on a row
// (before the first Next, after the last, or after Close).
func (r *Rows) Int64(j int) int64 {
	if !r.valid() {
		return 0
	}
	return r.raw(j)
}

// Float64 returns projection position j as a float; the column must be a
// schema Float64 column. It is 0 when the cursor is not positioned on a row.
func (r *Rows) Float64(j int) float64 {
	if !r.valid() {
		return 0
	}
	f := r.mustField(j, KindFloat64)
	return f.scaler.Decode(r.raw(j))
}

// String returns projection position j as a string; the column must be a
// schema String column. It is "" when the cursor is not positioned on a row.
func (r *Rows) String(j int) string {
	if !r.valid() {
		return ""
	}
	f := r.mustField(j, KindString)
	return f.dict.Value(r.raw(j))
}

// Time returns projection position j as a timestamp; the column must be a
// schema Time column. It is the zero time when the cursor is not positioned
// on a row.
func (r *Rows) Time(j int) time.Time {
	if !r.valid() {
		return time.Time{}
	}
	f := r.mustField(j, KindTime)
	return f.tcodec.Decode(r.raw(j))
}

// Value returns projection position j decoded to its logical type (int64,
// float64, string, or time.Time) — raw int64 when no schema is attached. It
// is nil when the cursor is not positioned on a row.
func (r *Rows) Value(j int) any {
	if !r.valid() {
		return nil
	}
	if r.schema == nil {
		return r.raw(j)
	}
	return r.schema.DecodeValue(r.cols[j], r.raw(j))
}

func (r *Rows) mustField(j int, want Kind) *field {
	if r.schema == nil {
		panic(fmt.Sprintf("flood: Rows: typed accessor %v needs a schema (index built without one)", want))
	}
	f := &r.schema.fields[r.cols[j]]
	if f.kind != want {
		panic(fmt.Sprintf("flood: Rows: column %q is %s, not %s", f.name, f.kind, want))
	}
	return f
}

// orderKey is one (value, id) pair in an OrderBy heap.
type orderKey struct {
	v  int64
	id int64
}

// OrderBy re-orders the result set by a column ascending and keeps only the
// first limit rows (limit <= 0 keeps everything), using a bounded top-k heap
// so a small limit never sorts the full result. The column is named against
// the table (it need not be projected); float, string, and time columns
// order by their logical values, since all encodings are order-preserving.
// Returns the receiver for chaining; iteration restarts.
func (r *Rows) OrderBy(col string, limit int) *Rows { return r.orderBy(col, limit, false) }

// OrderByDesc is OrderBy descending.
func (r *Rows) OrderByDesc(col string, limit int) *Rows { return r.orderBy(col, limit, true) }

func (r *Rows) orderBy(col string, limit int, desc bool) *Rows {
	if r.closed {
		return r // deterministic no-op on a closed cursor
	}
	// Resolve the column before the empty-result fast path: a typo'd name
	// must fail fast regardless of what the query happened to match.
	c := -1
	if srcs := r.rc.Sources(); len(srcs) > 0 {
		c = srcs[0].Table.ColumnIndex(col)
	} else if r.schema != nil {
		c = r.schema.ColumnIndex(col)
	}
	if c < 0 {
		panic(fmt.Sprintf("flood: OrderBy: unknown column %q", col))
	}
	ids := r.rc.IDs()
	if len(ids) == 0 {
		return r
	}
	// less orders keys by value (direction-adjusted), breaking ties by id so
	// the order is total and deterministic.
	less := func(a, b orderKey) bool {
		if a.v != b.v {
			if desc {
				return a.v > b.v
			}
			return a.v < b.v
		}
		return a.id < b.id
	}
	value := func(id int64) int64 {
		t, row, _ := r.rc.Resolve(id)
		return t.Get(c, row)
	}
	if limit <= 0 || limit >= len(ids) {
		keys := make([]orderKey, len(ids))
		for i, id := range ids {
			keys[i] = orderKey{v: value(id), id: id}
		}
		sort.Slice(keys, func(i, j int) bool { return less(keys[i], keys[j]) })
		for i, k := range keys {
			ids[i] = k.id
		}
		r.Reset()
		return r
	}
	// Bounded selection: a max-heap (under less) of the best limit keys; the
	// root is the worst kept key and is evicted by anything better.
	heap := make([]orderKey, 0, limit)
	siftDown := func(i int) {
		for {
			l, rt := 2*i+1, 2*i+2
			largest := i
			if l < len(heap) && less(heap[largest], heap[l]) {
				largest = l
			}
			if rt < len(heap) && less(heap[largest], heap[rt]) {
				largest = rt
			}
			if largest == i {
				return
			}
			heap[i], heap[largest] = heap[largest], heap[i]
			i = largest
		}
	}
	for _, id := range ids {
		k := orderKey{v: value(id), id: id}
		if len(heap) < limit {
			heap = append(heap, k)
			for i := len(heap) - 1; i > 0; {
				p := (i - 1) / 2
				if !less(heap[p], heap[i]) {
					break
				}
				heap[p], heap[i] = heap[i], heap[p]
				i = p
			}
			continue
		}
		if less(k, heap[0]) {
			heap[0] = k
			siftDown(0)
		}
	}
	sort.Slice(heap, func(i, j int) bool { return less(heap[i], heap[j]) })
	for i, k := range heap {
		ids[i] = k.id
	}
	r.rc.Truncate(len(heap))
	r.Reset()
	return r
}

// release clears the cursor and returns it to the pool.
func (r *Rows) release() {
	r.closed = true
	r.rc.Reset()
	r.schema = nil
	r.Reset()
	rowsPool.Put(r)
}

// Close releases the cursor and its buffers for reuse by a future Select.
// The Rows must not be used afterwards. An immediate second Close is a
// no-op, but once a later Select may have re-acquired the pooled cursor a
// stale Close would release that newer result set — call Close exactly once
// per Select (one deferred Close per cursor, no early explicit Close
// alongside it).
func (r *Rows) Close() {
	if r.closed {
		return
	}
	r.release()
}

// Select executes q and returns the matching rows with the named columns
// projected (none = every column), plus the execution stats. Row gathering
// rides the regular execution engine — zone-map block skipping, the
// selection-vector kernel, and (for large results) the morsel-driven
// parallel scan — so retrieval costs one id append per matching row; small
// selects are allocation-free in steady state once pooled cursors warm up.
// Typed accessors on the result need the index's schema (SetSchema, or
// Options.Schema at build time).
func (f *Flood) Select(q Query, cols ...string) (*Rows, Stats) {
	r := getRows(f.schema, f.Table(), cols)
	r.rc.PinSource(f.Table())
	st := f.Execute(q, &r.rc)
	r.finalize()
	return r, st
}

// Select executes q against the base index and the pending-row buffer,
// returning matching rows from both: buffered rows follow base rows in the
// cursor, their ids offset past the base. See Flood.Select.
func (d *DeltaIndex) Select(q Query, cols ...string) (*Rows, Stats) {
	r := getRows(d.schema, d.base.Table(), cols)
	r.rc.PinSource(d.base.Table())
	st := d.Execute(q, &r.rc)
	r.finalize()
	return r, st
}

// Select executes q against the current generation — learned base plus
// insert log — returning matching rows from both; log rows follow base rows
// in the cursor. The query is sampled and drift-monitored like any Execute.
// See Flood.Select.
func (a *AdaptiveIndex) Select(q Query, cols ...string) (*Rows, Stats) {
	ep := a.epoch.Load()
	r := getRows(a.schema, ep.flood.Table(), cols)
	r.rc.PinSource(ep.flood.Table())
	st := executeEpoch(ep, q, &r.rc)
	a.observe(ep, q, st)
	r.finalize()
	return r, st
}

// nameResolver adapts a plain column-name list to colResolver, for indexes
// (the sharded facade) that hold no single table to resolve against.
type nameResolver []string

func (n nameResolver) ColumnIndex(name string) int {
	for i, s := range n {
		if s == name {
			return i
		}
	}
	return -1
}

func (n nameResolver) Name(i int) string { return n[i] }
func (n nameResolver) NumCols() int      { return len(n) }

// resolver returns the projection resolver for the sharded facade: the
// schema when one is attached, else the column-name list.
func (s *ShardedIndex) resolver() colResolver {
	if s.schema != nil {
		return s.schema
	}
	return nameResolver(s.names)
}

// Select executes q across the surviving shards and returns the matching
// rows: each shard's sources are pinned at that shard's id stride, so ids
// sort shard-by-shard (base rows then insert-log rows within each) and
// resolve back to their owning shard by arithmetic — DeleteRows accepts
// them directly. Pruned shards contribute nothing and are never scanned.
// See Flood.Select.
func (s *ShardedIndex) Select(q Query, cols ...string) (*Rows, Stats) {
	r := getRows(s.schema, s.resolver(), cols)
	st := s.collectShards(nil, q, &r.rc, 0)
	r.finalize()
	return r, st
}

// SelectContext is Select under ctx and opts: every surviving shard draws
// from one cancellation signal and one LIMIT budget, so `LIMIT n` over k
// shards collects at most n rows in total and stops scanning once the
// budget is dry. See Flood.SelectContext.
func (s *ShardedIndex) SelectContext(ctx context.Context, q Query, opts *QueryOptions, cols ...string) (*Rows, Stats, error) {
	r := getRows(s.schema, s.resolver(), cols)
	st, err := runSelect(ctx, opts,
		func() Stats { return s.collectShards(nil, q, &r.rc, 0) },
		func(ctl *query.Control, cutover int) Stats { return s.collectShards(ctl, q, &r.rc, cutover) },
		nil)
	r.finalize()
	return r, st, err
}

// Select executes q against any index built over a table this schema
// produced — including the baselines — and returns the matching rows. The
// named columns are resolved through the schema; indexes with their own
// Select method (Flood, DeltaIndex, AdaptiveIndex) route through it so
// composite row-id spaces stay correct.
func (s *Schema) Select(idx Index, q Query, cols ...string) (*Rows, Stats) {
	if si, ok := idx.(interface {
		Select(Query, ...string) (*Rows, Stats)
	}); ok {
		r, st := si.Select(q, cols...)
		if r.schema == nil {
			// The index was built without an attached schema; the caller
			// supplied one explicitly, so typed accessors should work.
			r.schema = s
		}
		return r, st
	}
	r := getRows(s, s, cols)
	st := idx.Execute(q, &r.rc)
	r.finalize()
	return r, st
}

// SelectOr evaluates a disjunction (OR) of conjunctive queries and returns
// the union of matching rows, each exactly once: the rectangles are
// decomposed into disjoint pieces first (see ExecuteOr).
func (s *Schema) SelectOr(idx Index, queries []Query, cols ...string) (*Rows, Stats) {
	r := getRows(s, s, cols)
	if bp, ok := idx.(basePinner); ok {
		bp.pinBase(&r.rc)
	}
	st := ExecuteOr(idx, queries, &r.rc)
	r.finalize()
	return r, st
}

// SelectContext is Select under ctx and opts: execution honors the
// context's cancellation and deadline, and opts.Limit is pushed down into
// the scan so at most Limit rows are collected and scanning stops as soon
// as the budget is satisfied — a `LIMIT 10` over a million rows stops after
// the tenth match. A satisfied limit is success (nil error); cancellation
// returns the rows gathered so far together with ErrCanceled (the cursor is
// always non-nil and must be closed). With a background context and nil
// opts the call is identical to Select.
func (f *Flood) SelectContext(ctx context.Context, q Query, opts *QueryOptions, cols ...string) (*Rows, Stats, error) {
	r := getRows(f.schema, f.Table(), cols)
	r.rc.PinSource(f.Table())
	st, err := runSelect(ctx, opts,
		func() Stats { return f.Execute(q, &r.rc) },
		func(ctl *query.Control, cutover int) Stats { return f.executeControl(ctl, q, &r.rc, cutover) },
		nil)
	r.finalize()
	return r, st, err
}

// runSelect is the shared control lifecycle of every SelectContext flavor:
// derive the pooled control from (ctx, opts), run the plain unconditioned
// path when nothing can fire, otherwise run the control-threaded path with
// the per-query cutover override, poll cancellation one last time, release
// the control, and map a satisfied limit to success (the Select contract).
// finished, when non-nil, observes the latched stop state and the stats
// after a controlled execution completes — the hook for the adaptive
// facade's bookkeeping; the plain path's closure does its own.
func runSelect(ctx context.Context, opts *QueryOptions, plain func() Stats, controlled func(*query.Control, int) Stats, finished func(stop error, st Stats)) (Stats, error) {
	ctl, err := getControl(ctx, opts)
	if err != nil {
		return Stats{}, err
	}
	if ctl == nil && opts.cutover() == 0 {
		return plain(), nil
	}
	st := controlled(ctl, opts.cutover())
	stop := ctl.Finish()
	ctl.Release()
	if finished != nil {
		finished(stop, st)
	}
	if stop == ErrLimitReached {
		stop = nil
	}
	return st, stop
}

// SelectContext is Select under ctx and opts against the base index and the
// pending-row buffer; both scans share the cancellation signal and the
// limit budget (base rows fill the budget first). See Flood.SelectContext.
func (d *DeltaIndex) SelectContext(ctx context.Context, q Query, opts *QueryOptions, cols ...string) (*Rows, Stats, error) {
	r := getRows(d.schema, d.base.Table(), cols)
	r.rc.PinSource(d.base.Table())
	st, err := runSelect(ctx, opts,
		func() Stats { return d.Execute(q, &r.rc) },
		func(ctl *query.Control, cutover int) Stats { return d.executeControl(ctl, q, &r.rc, cutover) },
		nil)
	r.finalize()
	return r, st, err
}

// SelectContext is Select under ctx and opts against the current
// generation — learned base plus insert log — sharing one cancellation
// signal and limit budget across both. Canceled selects bypass the drift
// monitor and workload sample. See Flood.SelectContext.
func (a *AdaptiveIndex) SelectContext(ctx context.Context, q Query, opts *QueryOptions, cols ...string) (*Rows, Stats, error) {
	ep := a.epoch.Load()
	r := getRows(a.schema, ep.flood.Table(), cols)
	r.rc.PinSource(ep.flood.Table())
	st, err := runSelect(ctx, opts,
		func() Stats {
			st := executeEpoch(ep, q, &r.rc)
			a.observe(ep, q, st)
			return st
		},
		func(ctl *query.Control, cutover int) Stats { return executeEpochControl(ep, ctl, q, &r.rc, cutover) },
		func(stop error, st Stats) {
			switch stop {
			case nil:
				a.observe(ep, q, st)
			case ErrLimitReached:
				// The query shape is real workload signal for the sample,
				// but the truncated timing must not feed the drift monitor —
				// it would drag the window average below real full-query
				// cost.
				a.queries.Add(1)
				a.sample.Add(q)
			}
		})
	r.finalize()
	return r, st, err
}

// SelectContext is Schema.Select under ctx and opts, serving any index —
// including the baselines — with cancellation and LIMIT pushdown. Indexes
// with their own SelectContext (Flood, DeltaIndex, AdaptiveIndex) route
// through it so composite row-id spaces stay correct.
func (s *Schema) SelectContext(ctx context.Context, idx Index, q Query, opts *QueryOptions, cols ...string) (*Rows, Stats, error) {
	if si, ok := idx.(interface {
		SelectContext(context.Context, Query, *QueryOptions, ...string) (*Rows, Stats, error)
	}); ok {
		r, st, err := si.SelectContext(ctx, q, opts, cols...)
		if r != nil && r.schema == nil {
			r.schema = s
		}
		return r, st, err
	}
	r := getRows(s, s, cols)
	st, err := runSelect(ctx, opts,
		func() Stats { return idx.Execute(q, &r.rc) },
		func(ctl *query.Control, cutover int) Stats { return executeControl(idx, ctl, q, &r.rc, cutover) },
		nil)
	r.finalize()
	return r, st, err
}

// SelectOrContext is SelectOr under ctx and opts: the disjoint pieces of
// the disjunction share one cancellation signal and one limit budget, so a
// LIMIT spanning an OR stops scanning globally after the limit-th match.
func (s *Schema) SelectOrContext(ctx context.Context, idx Index, queries []Query, opts *QueryOptions, cols ...string) (*Rows, Stats, error) {
	r := getRows(s, s, cols)
	if bp, ok := idx.(basePinner); ok {
		bp.pinBase(&r.rc)
	}
	a, isAdaptive := idx.(*AdaptiveIndex)
	var finished func(stop error, st Stats)
	if isAdaptive {
		finished = func(stop error, _ Stats) {
			// Completed (or limit-satisfied) disjunctions feed the workload
			// sample like ExecuteOr does; only cancellations are dropped,
			// and truncated timings never reach the drift monitor.
			if stop != ErrCanceled {
				a.queries.Add(1)
				for _, q := range queries {
					a.sample.Add(q)
				}
			}
		}
	}
	st, err := runSelect(ctx, opts,
		func() Stats { return ExecuteOr(idx, queries, &r.rc) },
		func(ctl *query.Control, cutover int) Stats {
			if isAdaptive {
				return a.executeOrControl(ctl, queries, &r.rc, cutover)
			}
			if sh, ok := idx.(*ShardedIndex); ok {
				// Shard-outer iteration keeps the collector's per-shard id
				// strides intact; the generic piece-outer loop would
				// interleave shards and break the tiling.
				return sh.executeOrShards(ctl, queries, &r.rc, cutover)
			}
			return executeOrControl(idx, ctl, queries, &r.rc, cutover)
		},
		finished)
	r.finalize()
	return r, st, err
}

// basePinner lets composite indexes pin their base table into a collector's
// id space before a multi-piece execution, so base rows occupy ids
// [0, baseRows) regardless of which disjoint piece delivers first.
type basePinner interface {
	pinBase(rc *query.RowCollector)
}

func (f *Flood) pinBase(rc *query.RowCollector) { rc.PinSource(f.Table()) }

func (d *DeltaIndex) pinBase(rc *query.RowCollector) { rc.PinSource(d.base.Table()) }

// pinBase pins the current epoch's base. A swap landing between this pin
// and the execution's own epoch load just leaves a source that delivers no
// rows — ids stay consistent, only the base-first ordering degrades for
// that one race.
func (a *AdaptiveIndex) pinBase(rc *query.RowCollector) {
	rc.PinSource(a.epoch.Load().flood.Table())
}
