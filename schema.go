package flood

import (
	"fmt"
	"time"

	"flood/internal/encode"
)

// Kind enumerates the logical column types a Schema can describe. Physically
// every column is int64 (§7.1): floats are decimal-scaled, strings are
// dictionary-encoded, and timestamps are epoch ticks — the Kind records which
// encoding applies so queries and results can speak the logical type.
type Kind int

// The logical column kinds.
const (
	KindInt64 Kind = iota
	KindFloat64
	KindString
	KindTime
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case KindInt64:
		return "int64"
	case KindFloat64:
		return "float64"
	case KindString:
		return "string"
	case KindTime:
		return "time"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// field is one schema column: its logical kind plus the fitted encoder that
// maps logical values to the physical int64 domain.
type field struct {
	name   string
	kind   Kind
	digits int // KindFloat64: fixed decimal digits; -1 infers at Build
	scaler *encode.DecimalScaler
	dict   *encode.Dictionary
	tcodec encode.TimeCodec
}

// Schema describes a table's logical column types and carries the fitted
// encoders (dictionaries, decimal scalers, time codec) that translate
// between logical values and the int64 domain the index operates on. Declare
// columns with the chaining constructors, load data through a TableBuilder,
// then use the schema everywhere a logical value crosses the API boundary:
// typed predicates (Where), typed row decoding (Rows accessors), SQL literal
// resolution (floodsql.ParseTyped), and row retrieval over any index
// (Schema.Select).
//
//	s := flood.NewSchema().Int64("ts").Float64("fare", 2).String("city")
//	b := s.NewTableBuilder()
//	b.AppendRow(int64(1000), 12.50, "nyc")
//	tbl, err := b.Build()
//
// Schema declaration mistakes (duplicate or unknown column names, kind
// mismatches) panic: they are programming errors in static schema and query
// construction, like a malformed regexp in regexp.MustCompile. Data errors
// (a value that does not fit an encoding) surface as errors from
// TableBuilder.Build.
//
// A Schema is fitted by the most recent TableBuilder.Build using it; fitted
// encoders are required for string predicates and typed decoding. Between
// fits a Schema is read-only and safe for concurrent use. Building another
// table with the same Schema REPLACES the fitted encoders: never refit a
// schema while indexes built from its earlier tables are still serving —
// give each independently-serving dataset its own Schema.
type Schema struct {
	fields []field
	byName map[string]int
}

// NewSchema returns an empty schema; chain column constructors onto it.
func NewSchema() *Schema { return &Schema{byName: make(map[string]int)} }

func (s *Schema) add(name string, f field) *Schema {
	if name == "" {
		panic("flood: schema column name must be non-empty")
	}
	if _, dup := s.byName[name]; dup {
		panic(fmt.Sprintf("flood: duplicate schema column %q", name))
	}
	f.name = name
	s.byName[name] = len(s.fields)
	s.fields = append(s.fields, f)
	return s
}

// Int64 declares a raw 64-bit integer column.
func (s *Schema) Int64(name string) *Schema { return s.add(name, field{kind: KindInt64}) }

// Float64 declares a floating-point column preserved to the given number of
// decimal digits (0..18); pass digits < 0 to infer the smallest count (up
// to 9) that represents every loaded value exactly — TableBuilder.Build
// fails if no count up to 9 does, rather than storing rounded values.
func (s *Schema) Float64(name string, digits int) *Schema {
	if digits > 18 {
		panic(fmt.Sprintf("flood: column %q: digits %d out of [0, 18]", name, digits))
	}
	f := field{kind: KindFloat64, digits: digits}
	if digits >= 0 {
		sc, err := encode.NewDecimalScaler(digits)
		if err != nil {
			panic(fmt.Sprintf("flood: column %q: %v", name, err))
		}
		f.scaler = sc
	}
	return s.add(name, f)
}

// String declares a dictionary-encoded string column. Codes are assigned in
// lexicographic order at Build, so range and prefix predicates on the column
// match string order.
func (s *Schema) String(name string) *Schema { return s.add(name, field{kind: KindString}) }

// Time declares a timestamp column stored as nanosecond ticks since the Unix
// epoch.
func (s *Schema) Time(name string) *Schema { return s.TimeUnit(name, time.Nanosecond) }

// TimeUnit declares a timestamp column stored as ticks of the given unit
// (coarser units extend the representable range and compress better).
func (s *Schema) TimeUnit(name string, unit time.Duration) *Schema {
	if unit <= 0 {
		panic(fmt.Sprintf("flood: column %q: non-positive time unit %v", name, unit))
	}
	return s.add(name, field{kind: KindTime, tcodec: encode.TimeCodec{Unit: unit}})
}

// NumCols returns the number of declared columns.
func (s *Schema) NumCols() int { return len(s.fields) }

// Name returns the name of column i.
func (s *Schema) Name(i int) string { return s.fields[i].name }

// Names returns the column names in declaration (= physical) order.
func (s *Schema) Names() []string {
	out := make([]string, len(s.fields))
	for i, f := range s.fields {
		out[i] = f.name
	}
	return out
}

// ColumnIndex returns the position of the named column, or -1.
func (s *Schema) ColumnIndex(name string) int {
	if i, ok := s.byName[name]; ok {
		return i
	}
	return -1
}

// ColumnKind returns the logical kind of the named column; ok is false for
// unknown names.
func (s *Schema) ColumnKind(name string) (Kind, bool) {
	i, ok := s.byName[name]
	if !ok {
		return 0, false
	}
	return s.fields[i].kind, true
}

// KindAt returns the logical kind of column i.
func (s *Schema) KindAt(i int) Kind { return s.fields[i].kind }

// mustCol resolves a column name to its index, panicking on unknown names
// and, when want >= 0, on kind mismatches.
func (s *Schema) mustCol(name string, want Kind) int {
	i, ok := s.byName[name]
	if !ok {
		panic(fmt.Sprintf("flood: unknown schema column %q", name))
	}
	if want >= 0 && s.fields[i].kind != want {
		panic(fmt.Sprintf("flood: column %q is %s, not %s", name, s.fields[i].kind, want))
	}
	return i
}

// anyKind marks predicates that accept any column kind.
const anyKind Kind = -1

// floatScaler resolves a float column and its fitted scaler, panicking when
// an inferred-digits column has not been fitted by a Build yet.
func (s *Schema) floatScaler(name string) (int, *encode.DecimalScaler) {
	col := s.mustCol(name, KindFloat64)
	sc := s.fields[col].scaler
	if sc == nil {
		panic(fmt.Sprintf("flood: column %q: inferred scaler not fitted yet (call Build first)", name))
	}
	return col, sc
}

// stringDict resolves a string column and its fitted dictionary, panicking
// before the first Build.
func (s *Schema) stringDict(name string) (int, *encode.Dictionary) {
	col := s.mustCol(name, KindString)
	d := s.fields[col].dict
	if d == nil {
		panic(fmt.Sprintf("flood: column %q: dictionary not fitted yet (call Build first)", name))
	}
	return col, d
}

// Dictionary returns the fitted dictionary of a string column (nil before
// the first Build).
func (s *Schema) Dictionary(name string) *encode.Dictionary {
	return s.fields[s.mustCol(name, KindString)].dict
}

// Scaler returns the fitted decimal scaler of a float column (nil before
// the first Build when digits are inferred).
func (s *Schema) Scaler(name string) *encode.DecimalScaler {
	return s.fields[s.mustCol(name, KindFloat64)].scaler
}

// DecodeValue converts the physical int64 stored in column i back to its
// logical value (int64, float64, string, or time.Time).
func (s *Schema) DecodeValue(i int, raw int64) any {
	f := &s.fields[i]
	switch f.kind {
	case KindFloat64:
		return f.scaler.Decode(raw)
	case KindString:
		return f.dict.Value(raw)
	case KindTime:
		return f.tcodec.Decode(raw)
	default:
		return raw
	}
}

// EncodeRow converts one logical row (one value per column, in schema order)
// to the physical int64 row that Insert and NewTable accept. Int64 columns
// take int64 or int; float columns float64; string columns string (the value
// must already be in the fitted dictionary); time columns time.Time.
func (s *Schema) EncodeRow(vals ...any) ([]int64, error) {
	if len(vals) != len(s.fields) {
		return nil, fmt.Errorf("flood: row has %d values, schema has %d columns", len(vals), len(s.fields))
	}
	out := make([]int64, len(vals))
	for i, v := range vals {
		enc, err := s.encodeValue(i, v)
		if err != nil {
			return nil, err
		}
		out[i] = enc
	}
	return out, nil
}

func (s *Schema) encodeValue(i int, v any) (int64, error) {
	f := &s.fields[i]
	switch f.kind {
	case KindInt64:
		switch x := v.(type) {
		case int64:
			return x, nil
		case int:
			return int64(x), nil
		}
	case KindFloat64:
		if x, ok := v.(float64); ok {
			if f.scaler == nil {
				return 0, fmt.Errorf("flood: column %q: inferred scaler not fitted yet (call Build first)", f.name)
			}
			enc, err := f.scaler.EncodeChecked(x)
			if err != nil {
				return 0, fmt.Errorf("flood: column %q: %w", f.name, err)
			}
			return enc, nil
		}
	case KindString:
		if x, ok := v.(string); ok {
			if f.dict == nil {
				return 0, fmt.Errorf("flood: column %q: dictionary not fitted yet (call Build first)", f.name)
			}
			c, ok := f.dict.Code(x)
			if !ok {
				return 0, fmt.Errorf("flood: column %q: value %q not in dictionary", f.name, x)
			}
			return c, nil
		}
	case KindTime:
		if x, ok := v.(time.Time); ok {
			return f.tcodec.EncodeValue(x), nil
		}
	}
	return 0, fmt.Errorf("flood: column %q (%s): incompatible value %T", f.name, f.kind, v)
}

// Where starts a typed predicate over the schema's columns. Chain the
// With* constructors and pass the result anywhere a Query is accepted:
//
//	q := s.Where().
//		WithTimeRange("pickup", t0, t1).
//		WithStringEquals("city", "nyc").
//		WithFloatRange("fare", 1.5, 9.99).
//		Query()
func (s *Schema) Where() *TypedQuery {
	return &TypedQuery{s: s, q: NewQuery(len(s.fields))}
}

// TypedQuery builds a Query from logical-typed predicates, encoding each one
// into the physical int64 domain through the schema's fitted encoders. A
// predicate naming a value outside the data domain (an unknown dictionary
// string, a float range containing no representable code) yields an
// unsatisfiable query rather than an error, matching SQL semantics of an
// empty result.
type TypedQuery struct {
	s *Schema
	q Query
}

// Query returns the encoded int64 query.
func (t *TypedQuery) Query() Query { return t.q }

// impossible marks dimension col unsatisfiable (Min > Max).
func (t *TypedQuery) impossible(col int) *TypedQuery {
	t.q = t.q.WithRange(col, 1, 0)
	return t
}

// WithIntRange filters an int64 column to the inclusive range [lo, hi].
func (t *TypedQuery) WithIntRange(name string, lo, hi int64) *TypedQuery {
	t.q = t.q.WithRange(t.s.mustCol(name, KindInt64), lo, hi)
	return t
}

// WithIntEquals filters an int64 column to one value.
func (t *TypedQuery) WithIntEquals(name string, v int64) *TypedQuery {
	return t.WithIntRange(name, v, v)
}

// WithFloatRange filters a float column to the inclusive range [lo, hi].
// Endpoints more precise than the column's digits round conservatively
// inward.
func (t *TypedQuery) WithFloatRange(name string, lo, hi float64) *TypedQuery {
	col, sc := t.s.floatScaler(name)
	l, h := sc.EncodeLower(lo), sc.EncodeUpper(hi)
	if l > h {
		return t.impossible(col)
	}
	t.q = t.q.WithRange(col, l, h)
	return t
}

// WithFloatMin filters a float column to values >= lo.
func (t *TypedQuery) WithFloatMin(name string, lo float64) *TypedQuery {
	col, sc := t.s.floatScaler(name)
	t.q = t.q.WithRange(col, sc.EncodeLower(lo), PosInf)
	return t
}

// WithFloatMax filters a float column to values <= hi.
func (t *TypedQuery) WithFloatMax(name string, hi float64) *TypedQuery {
	col, sc := t.s.floatScaler(name)
	t.q = t.q.WithRange(col, NegInf, sc.EncodeUpper(hi))
	return t
}

// WithStringEquals filters a string column to one value; a value outside the
// fitted dictionary makes the query unsatisfiable.
func (t *TypedQuery) WithStringEquals(name string, v string) *TypedQuery {
	col, d := t.s.stringDict(name)
	c, ok := d.Code(v)
	if !ok {
		return t.impossible(col)
	}
	t.q = t.q.WithEquals(col, c)
	return t
}

// PreparedString is a string-equality predicate whose dictionary code was
// resolved once, at preparation time. Hot query loops that filter on the
// same value repeatedly (a serving tier fanning out one tenant's queries, a
// benchmark) use it to skip the per-query dictionary hash lookup that
// WithStringEquals pays. A PreparedString is bound to the fit that produced
// it: re-running TableBuilder.Build on the schema invalidates outstanding
// prepared predicates along with the rest of the fitted encoders.
type PreparedString struct {
	col  int
	code int64
	ok   bool
}

// PrepareString resolves a string-equality predicate against the fitted
// dictionary once, for reuse across queries with WithPreparedString. A value
// absent from the dictionary is not an error: applying the prepared
// predicate yields an unsatisfiable query, like WithStringEquals.
func (s *Schema) PrepareString(name, v string) PreparedString {
	col, d := s.stringDict(name)
	c, ok := d.Code(v)
	return PreparedString{col: col, code: c, ok: ok}
}

// WithPreparedString applies a predicate prepared by Schema.PrepareString.
func (t *TypedQuery) WithPreparedString(p PreparedString) *TypedQuery {
	if !p.ok {
		return t.impossible(p.col)
	}
	t.q = t.q.WithEquals(p.col, p.code)
	return t
}

// WithStringRange filters a string column to the inclusive lexicographic
// range [lo, hi]; endpoints need not exist in the data.
func (t *TypedQuery) WithStringRange(name string, lo, hi string) *TypedQuery {
	col, d := t.s.stringDict(name)
	l, h, ok := d.RangeFor(lo, hi)
	if !ok {
		return t.impossible(col)
	}
	t.q = t.q.WithRange(col, l, h)
	return t
}

// WithPrefix filters a string column to values starting with prefix
// (LIKE 'prefix%').
func (t *TypedQuery) WithPrefix(name string, prefix string) *TypedQuery {
	col, d := t.s.stringDict(name)
	l, h, ok := d.PrefixRange(prefix)
	if !ok {
		return t.impossible(col)
	}
	t.q = t.q.WithRange(col, l, h)
	return t
}

// WithTimeRange filters a time column to the inclusive range [lo, hi].
// Endpoints finer than the column's tick unit round conservatively inward
// (lo up, hi down), so no stored timestamp outside [lo, hi] can match.
func (t *TypedQuery) WithTimeRange(name string, lo, hi time.Time) *TypedQuery {
	col := t.s.mustCol(name, KindTime)
	c := t.s.fields[col].tcodec
	l, h := c.EncodeLower(lo), c.EncodeUpper(hi)
	if l > h {
		return t.impossible(col)
	}
	t.q = t.q.WithRange(col, l, h)
	return t
}

// WithRange adds a raw physical-domain range on a column of any kind —
// the escape hatch to the untyped API.
func (t *TypedQuery) WithRange(name string, lo, hi int64) *TypedQuery {
	t.q = t.q.WithRange(t.s.mustCol(name, anyKind), lo, hi)
	return t
}
