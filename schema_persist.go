package flood

import (
	"fmt"
	"time"

	"flood/internal/encode"
	"flood/internal/wire"
)

// The schema snapshot section ("schm") persists the typed schema attached to
// an index — column names and kinds plus the fitted encoders (string
// dictionaries, decimal scalers, time codecs) — so a loaded index serves
// typed Select and floodsql queries without the caller re-supplying the
// schema it built with.
const sectionSchema = "schm"

// encodeSchema writes the schema as a snapshot section payload.
func (s *Schema) encodeSchema(w *wire.Writer) {
	w.Int(len(s.fields))
	for i := range s.fields {
		f := &s.fields[i]
		w.Str(f.name)
		w.U8(uint8(f.kind))
		switch f.kind {
		case KindFloat64:
			w.I64(int64(f.digits))
			w.Bool(f.scaler != nil)
			if f.scaler != nil {
				w.Int(f.scaler.Digits())
			}
		case KindString:
			w.Bool(f.dict != nil)
			if f.dict != nil {
				w.Strs(f.dict.Values())
			}
		case KindTime:
			w.I64(int64(f.tcodec.Unit))
		}
	}
}

// decodeSchema reconstructs a schema from a CRC-verified section payload.
func decodeSchema(payload []byte) (*Schema, error) {
	r := wire.NewReaderBytes(payload)
	n := r.Int()
	if err := r.Err(); err != nil {
		return nil, fmt.Errorf("flood: schema section: %w", err)
	}
	if n < 0 {
		return nil, fmt.Errorf("flood: schema section declares %d columns", n)
	}
	s := NewSchema()
	for i := 0; i < n; i++ {
		name := r.Str()
		kind := Kind(r.U8())
		if err := r.Err(); err != nil {
			return nil, fmt.Errorf("flood: schema column %d: %w", i, err)
		}
		f := field{name: name, kind: kind}
		switch kind {
		case KindInt64:
		case KindFloat64:
			f.digits = int(r.I64())
			if r.Bool() {
				sc, err := encode.NewDecimalScaler(r.Int())
				if r.Err() == nil && err != nil {
					return nil, fmt.Errorf("flood: schema column %q: %w", name, err)
				}
				f.scaler = sc
			}
		case KindString:
			if r.Bool() {
				d, err := encode.DictionaryFromValues(r.Strs())
				if r.Err() == nil && err != nil {
					return nil, fmt.Errorf("flood: schema column %q: %w", name, err)
				}
				f.dict = d
			}
		case KindTime:
			u := time.Duration(r.I64())
			if r.Err() == nil && u <= 0 {
				return nil, fmt.Errorf("flood: schema column %q has non-positive time unit %d", name, u)
			}
			f.tcodec = encode.TimeCodec{Unit: u}
		default:
			return nil, fmt.Errorf("flood: schema column %q has unknown kind %d", name, kind)
		}
		if err := r.Err(); err != nil {
			return nil, fmt.Errorf("flood: schema column %d: %w", i, err)
		}
		if name == "" {
			return nil, fmt.Errorf("flood: schema column %d has empty name", i)
		}
		if _, dup := s.byName[name]; dup {
			return nil, fmt.Errorf("flood: schema has duplicate column %q", name)
		}
		s.byName[name] = len(s.fields)
		s.fields = append(s.fields, f)
	}
	return s, nil
}
