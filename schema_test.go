package flood

import (
	"math/rand"
	"strings"
	"testing"
	"time"

	"flood/internal/query"
)

// typedFixture is a small typed dataset: the built table plus the logical
// ground-truth columns for brute-force checks.
type typedFixture struct {
	schema *Schema
	tbl    *Table
	ts     []int64
	fare   []float64
	city   []string
	pickup []time.Time
}

var fixtureCities = []string{"atlanta", "boston", "chicago", "denver", "nyc", "oakland", "seattle"}

// newTypedFixture generates n rows over (ts int64, fare float64(2),
// city string, pickup time) and builds the table through the TableBuilder.
func newTypedFixture(t *testing.T, n int, seed int64) *typedFixture {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	fx := &typedFixture{
		schema: NewSchema().Int64("ts").Float64("fare", 2).String("city").TimeUnit("pickup", time.Second),
	}
	epoch := time.Date(2023, 1, 1, 0, 0, 0, 0, time.UTC)
	for i := 0; i < n; i++ {
		fx.ts = append(fx.ts, rng.Int63n(100_000))
		fx.fare = append(fx.fare, float64(rng.Intn(10_000))/100)
		fx.city = append(fx.city, fixtureCities[rng.Intn(len(fixtureCities))])
		fx.pickup = append(fx.pickup, epoch.Add(time.Duration(rng.Int63n(30*24*3600))*time.Second))
	}
	b := fx.schema.NewTableBuilder()
	if err := b.SetInt64Column("ts", fx.ts); err != nil {
		t.Fatal(err)
	}
	if err := b.SetFloat64Column("fare", fx.fare); err != nil {
		t.Fatal(err)
	}
	if err := b.SetStringColumn("city", fx.city); err != nil {
		t.Fatal(err)
	}
	if err := b.SetTimeColumn("pickup", fx.pickup); err != nil {
		t.Fatal(err)
	}
	tbl, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	fx.tbl = tbl
	return fx
}

func TestTableBuilderAppendRowRoundTrip(t *testing.T) {
	s := NewSchema().Int64("id").Float64("price", 2).String("name").Time("at")
	b := s.NewTableBuilder()
	at := time.Date(2024, 5, 1, 12, 0, 0, 0, time.UTC)
	rows := []struct {
		id    int64
		price float64
		name  string
		at    time.Time
	}{
		{1, 19.99, "widget", at},
		{2, 0.5, "gadget", at.Add(time.Hour)},
		{3, 123.45, "widget", at.Add(2 * time.Hour)},
	}
	for _, r := range rows {
		if err := b.AppendRow(r.id, r.price, r.name, r.at); err != nil {
			t.Fatal(err)
		}
	}
	tbl, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if tbl.NumRows() != 3 || tbl.NumCols() != 4 {
		t.Fatalf("table is %dx%d, want 3x4", tbl.NumRows(), tbl.NumCols())
	}
	for i, r := range rows {
		if got := s.DecodeValue(0, tbl.Get(0, i)); got != r.id {
			t.Fatalf("row %d id = %v", i, got)
		}
		if got := s.DecodeValue(1, tbl.Get(1, i)); got != r.price {
			t.Fatalf("row %d price = %v, want %v", i, got, r.price)
		}
		if got := s.DecodeValue(2, tbl.Get(2, i)); got != r.name {
			t.Fatalf("row %d name = %v", i, got)
		}
		if got := s.DecodeValue(3, tbl.Get(3, i)).(time.Time); !got.Equal(r.at) {
			t.Fatalf("row %d at = %v, want %v", i, got, r.at)
		}
	}
	// Dictionary codes preserve lexicographic order.
	if tbl.Get(2, 1) >= tbl.Get(2, 0) {
		t.Fatal("gadget should encode below widget")
	}
}

func TestTableBuilderErrors(t *testing.T) {
	s := NewSchema().Int64("a").Float64("b", 1)
	b := s.NewTableBuilder()
	if err := b.AppendRow(int64(1)); err == nil {
		t.Fatal("short row accepted")
	}
	if err := b.AppendRow("nope", 1.5); err == nil || !strings.Contains(err.Error(), `column "a"`) {
		t.Fatalf("wrong-kind row error = %v", err)
	}
	if err := b.SetInt64Column("missing", nil); err == nil {
		t.Fatal("unknown column accepted")
	}
	if err := b.SetFloat64Column("a", nil); err == nil {
		t.Fatal("kind mismatch accepted")
	}
	if err := b.AppendRow(int64(1), 2.5); err != nil {
		t.Fatal(err)
	}
	if err := b.SetFloat64Column("b", []float64{1, 2}); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Build(); err == nil {
		t.Fatal("ragged columns accepted")
	}
}

func TestSchemaPanicsOnMisuse(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s did not panic", name)
			}
		}()
		fn()
	}
	mustPanic("duplicate column", func() { NewSchema().Int64("a").Int64("a") })
	mustPanic("empty name", func() { NewSchema().Int64("") })
	mustPanic("bad digits", func() { NewSchema().Float64("f", 99) })
	mustPanic("bad unit", func() { NewSchema().TimeUnit("t", -time.Second) })
	s := NewSchema().Int64("a").String("c")
	mustPanic("unknown predicate column", func() { s.Where().WithIntEquals("zzz", 1) })
	mustPanic("kind mismatch predicate", func() { s.Where().WithFloatRange("a", 0, 1) })
	mustPanic("unfitted dictionary", func() { s.Where().WithStringEquals("c", "x") })
}

func TestTypedPredicatesEncode(t *testing.T) {
	fx := newTypedFixture(t, 2000, 11)
	// Brute-force a combined typed predicate against the logical columns.
	lo, hi := 10.00, 49.99
	t0 := time.Date(2023, 1, 5, 0, 0, 0, 0, time.UTC)
	t1 := time.Date(2023, 1, 20, 0, 0, 0, 0, time.UTC)
	q := fx.schema.Where().
		WithFloatRange("fare", lo, hi).
		WithStringEquals("city", "nyc").
		WithTimeRange("pickup", t0, t1).
		Query()
	want := 0
	for i := range fx.ts {
		if fx.fare[i] >= lo && fx.fare[i] <= hi && fx.city[i] == "nyc" &&
			!fx.pickup[i].Before(t0) && !fx.pickup[i].After(t1) {
			want++
		}
	}
	got := int64(0)
	sc := query.GetScanner(fx.tbl)
	_, got = sc.ScanRange(q, q.FilteredDims(), 0, fx.tbl.NumRows(), query.NewCount())
	sc.Release()
	if got != int64(want) {
		t.Fatalf("typed predicate matched %d rows, brute force says %d", got, want)
	}

	// Unknown dictionary value: unsatisfiable, not an error.
	if q := fx.schema.Where().WithStringEquals("city", "gotham").Query(); !q.Empty() {
		t.Fatal("unknown string should make the query unsatisfiable")
	}
	// Prefix predicate covers exactly the prefixed values.
	q = fx.schema.Where().WithPrefix("city", "b").Query()
	r := q.Ranges[fx.schema.ColumnIndex("city")]
	d := fx.schema.Dictionary("city")
	if d.Value(r.Min) != "boston" || d.Value(r.Max) != "boston" {
		t.Fatalf("prefix range covers %q..%q", d.Value(r.Min), d.Value(r.Max))
	}
	// Over-precise float endpoints round conservatively inward.
	q = fx.schema.Where().WithFloatRange("fare", 1.001, 1.999).Query()
	r = q.Ranges[fx.schema.ColumnIndex("fare")]
	if r.Min != 101 || r.Max != 199 {
		t.Fatalf("float range encoded to [%d, %d], want [101, 199]", r.Min, r.Max)
	}
}

func TestSchemaEncodeRow(t *testing.T) {
	fx := newTypedFixture(t, 100, 5)
	row, err := fx.schema.EncodeRow(int64(42), 3.50, "denver", fx.pickup[0])
	if err != nil {
		t.Fatal(err)
	}
	if row[0] != 42 || row[1] != 350 {
		t.Fatalf("encoded row = %v", row)
	}
	if got := fx.schema.DecodeValue(2, row[2]); got != "denver" {
		t.Fatalf("city decoded to %v", got)
	}
	if _, err := fx.schema.EncodeRow(int64(1), 2.0, "gotham", fx.pickup[0]); err == nil {
		t.Fatal("unknown dictionary value should fail EncodeRow")
	}
	if _, err := fx.schema.EncodeRow(int64(1)); err == nil {
		t.Fatal("short row should fail EncodeRow")
	}
}

func TestSchemaInferredFloatDigits(t *testing.T) {
	s := NewSchema().Float64("v", -1)
	b := s.NewTableBuilder()
	if err := b.SetFloat64Column("v", []float64{1.5, 2.25, 3.75}); err != nil {
		t.Fatal(err)
	}
	tbl, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if got := tbl.Get(0, 1); got != 225 {
		t.Fatalf("inferred scaling stored %d for 2.25, want 225", got)
	}
	q := s.Where().WithFloatRange("v", 2.0, 3.0).Query()
	if r := q.Ranges[0]; r.Min != 200 || r.Max != 300 {
		t.Fatalf("inferred-digit predicate encoded to [%d, %d]", r.Min, r.Max)
	}
}

func TestFloatBoundsClampOutOfRange(t *testing.T) {
	fx := newTypedFixture(t, 500, 41)
	// An absurdly large upper bound must behave like +infinity, not wrap
	// negative and empty the result.
	q := fx.schema.Where().WithFloatMax("fare", 1e18).Query()
	if r := q.Ranges[fx.schema.ColumnIndex("fare")]; r.Max != PosInf {
		t.Fatalf("WithFloatMax(1e18) encoded Max = %d, want PosInf", r.Max)
	}
	q = fx.schema.Where().WithFloatMin("fare", -1e18).Query()
	if r := q.Ranges[fx.schema.ColumnIndex("fare")]; r.Min != NegInf {
		t.Fatalf("WithFloatMin(-1e18) encoded Min = %d, want NegInf", r.Min)
	}
	// A range entirely past the representable domain clamps to
	// [PosInf, PosInf] — no storable code can match it.
	q = fx.schema.Where().WithFloatRange("fare", 1e18, 2e18).Query()
	if r := q.Ranges[fx.schema.ColumnIndex("fare")]; r.Min != PosInf {
		t.Fatalf("out-of-domain lower bound encoded to %d, want PosInf", r.Min)
	}
}

func TestSchemaSelectAttachesSchemaToSchemalessIndex(t *testing.T) {
	fx := newTypedFixture(t, 500, 42)
	// Build WITHOUT Options.Schema: idx.Select alone would serve raw rows.
	idx, err := BuildWithLayout(fx.tbl, fixtureLayout(fx), nil)
	if err != nil {
		t.Fatal(err)
	}
	q := fx.schema.Where().WithStringEquals("city", "denver").Query()
	rows, _ := fx.schema.Select(idx, q, "city")
	defer rows.Close()
	if rows.Len() == 0 {
		t.Fatal("no denver rows in the fixture")
	}
	for rows.Next() {
		if rows.String(0) != "denver" { // must not panic: schema came from the caller
			t.Fatalf("decoded city %q", rows.String(0))
		}
	}
}

func TestAppendRowAtomicOnTypeError(t *testing.T) {
	s := NewSchema().String("city").Float64("fare", 2).Int64("dist")
	b := s.NewTableBuilder()
	// Fails on the LAST column: nothing may be appended.
	if err := b.AppendRow("nyc", 12.5, "oops"); err == nil {
		t.Fatal("bad row accepted")
	}
	if err := b.AppendRow("nyc", 12.5, int64(3)); err != nil {
		t.Fatal(err)
	}
	tbl, err := b.Build()
	if err != nil {
		t.Fatalf("builder corrupted by failed append: %v", err)
	}
	if tbl.NumRows() != 1 {
		t.Fatalf("table has %d rows, want 1 (failed append must not leak values)", tbl.NumRows())
	}
}

func TestTimeRangeDirectedRounding(t *testing.T) {
	s := NewSchema().TimeUnit("at", time.Minute)
	b := s.NewTableBuilder()
	t0 := time.Date(2024, 1, 1, 10, 0, 0, 0, time.UTC)
	if err := b.SetTimeColumn("at", []time.Time{t0, t0.Add(time.Minute)}); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Build(); err != nil {
		t.Fatal(err)
	}
	// A lower bound 30s past the tick must exclude the 10:00 row.
	q := s.Where().WithTimeRange("at", t0.Add(30*time.Second), t0.Add(2*time.Minute)).Query()
	enc := s.fields[0].tcodec
	if r := q.Ranges[0]; r.Min != enc.EncodeValue(t0.Add(time.Minute)) {
		t.Fatalf("sub-unit lower bound encoded to tick %d, want the 10:01 tick", r.Min)
	}
	// An upper bound 30s past a tick still includes that tick.
	q = s.Where().WithTimeRange("at", t0, t0.Add(90*time.Second)).Query()
	if r := q.Ranges[0]; r.Max != enc.EncodeValue(t0.Add(time.Minute)) {
		t.Fatalf("sub-unit upper bound encoded to tick %d, want the 10:01 tick", r.Max)
	}
}

func TestPreparedStringPredicate(t *testing.T) {
	fx := newTypedFixture(t, 2000, 19)
	// A prepared predicate encodes identically to WithStringEquals.
	p := fx.schema.PrepareString("city", "nyc")
	got := fx.schema.Where().WithPreparedString(p).Query()
	want := fx.schema.Where().WithStringEquals("city", "nyc").Query()
	col := fx.schema.ColumnIndex("city")
	if got.Ranges[col] != want.Ranges[col] {
		t.Fatalf("prepared predicate encoded %+v, WithStringEquals %+v", got.Ranges[col], want.Ranges[col])
	}
	// Reuse across many queries keeps working.
	for i := 0; i < 3; i++ {
		q := fx.schema.Where().WithPreparedString(p).Query()
		if q.Ranges[col] != want.Ranges[col] {
			t.Fatalf("reuse %d changed the predicate", i)
		}
	}
	// An unknown value prepares fine and yields an unsatisfiable query.
	if q := fx.schema.Where().WithPreparedString(fx.schema.PrepareString("city", "gotham")).Query(); !q.Empty() {
		t.Fatal("unknown prepared string should make the query unsatisfiable")
	}
	// Unknown columns and kind mismatches still panic at prepare time.
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("PrepareString on an int column did not panic")
			}
		}()
		fx.schema.PrepareString("ts", "x")
	}()
}
