package flood

import (
	"fmt"
	"math/rand"
	"slices"
	"testing"
)

// tuplesOf drains a Rows cursor into sorted all-column value strings, the
// physical-order-independent image of a result set.
func tuplesOf(rows *Rows) []string {
	ncols := len(rows.Columns())
	var out []string
	for rows.Next() {
		s := ""
		for j := 0; j < ncols; j++ {
			s += fmt.Sprintf("%d|", rows.Int64(j))
		}
		out = append(out, s)
	}
	slices.Sort(out)
	return out
}

// TestAdaptiveSelectEquivalenceAcrossRelearn pins row retrieval across a
// relearn swap: the same Select returns the same rows before and after the
// background rebuild publishes a new layout (physical ids change with the
// reorder; the value tuples must not). Runs in the CI race matrix.
func TestAdaptiveSelectEquivalenceAcrossRelearn(t *testing.T) {
	a, ds, queries := adaptiveUnderTest(t, &AdaptiveConfig{MergeFraction: -1})
	dateCol := ds.ColumnIndex("date")
	rng := rand.New(rand.NewSource(401))
	const added = 150
	for i := 0; i < added; i++ {
		if err := a.Insert(markerRow(ds, rng, dateCol, i)); err != nil {
			t.Fatal(err)
		}
	}
	marker := NewQuery(ds.Table.NumCols()).WithRange(dateCol, 5000, 6000)
	probes := append([]Query{marker}, queries[:8]...)

	before := make([][]string, len(probes))
	for i, q := range probes {
		rows, _ := a.Select(q)
		before[i] = tuplesOf(rows)
		rows.Close()
	}
	if len(before[0]) != added {
		t.Fatalf("marker select found %d rows before swap, want %d", len(before[0]), added)
	}

	if !a.TriggerRelearn() {
		t.Fatal("forced relearn did not start")
	}
	a.Wait()
	st := a.Stats()
	if st.Relearns != 1 || st.LastError != nil {
		t.Fatalf("relearns = %d, err = %v", st.Relearns, st.LastError)
	}
	if st.PendingRows != 0 {
		t.Fatalf("relearn left %d rows pending", st.PendingRows)
	}

	for i, q := range probes {
		rows, _ := a.Select(q)
		after := tuplesOf(rows)
		rows.Close()
		if !slices.Equal(after, before[i]) {
			t.Fatalf("probe %d: %d rows after swap, %d before", i, len(after), len(before[i]))
		}
	}
}

// TestAdaptiveSelectSeesInsertLog pins that Select reads the current
// generation's insert log (including sealed segments) with log ids offset
// past the base.
func TestAdaptiveSelectSeesInsertLog(t *testing.T) {
	a, ds, _ := adaptiveUnderTest(t, &AdaptiveConfig{MergeFraction: -1})
	dateCol := ds.ColumnIndex("date")
	rng := rand.New(rand.NewSource(402))
	const added = 3000 // past one sealed sideLog segment
	for i := 0; i < added; i++ {
		if err := a.Insert(markerRow(ds, rng, dateCol, i)); err != nil {
			t.Fatal(err)
		}
	}
	marker := NewQuery(ds.Table.NumCols()).WithRange(dateCol, 5000, 6000)
	rows, _ := a.Select(marker)
	defer rows.Close()
	if rows.Len() != added {
		t.Fatalf("select found %d log rows, want %d", rows.Len(), added)
	}
	baseRows := int64(ds.Table.NumRows())
	for rows.Next() {
		if rows.RowID() < baseRows {
			t.Fatalf("marker row id %d inside the base range (< %d)", rows.RowID(), baseRows)
		}
		if v := rows.Int64(dateCol); v < 5000 || v > 6000 {
			t.Fatalf("marker row decoded date %d", v)
		}
	}
}
