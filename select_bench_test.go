package flood

import (
	"math/rand"
	"sync"
	"testing"
)

// selectBenchState is the shared 1M-row typed index for the Select
// benchmarks, built once per test binary.
var selectBenchState struct {
	once   sync.Once
	schema *Schema
	idx    *Flood
	q      Query
}

func selectBenchSetup(b *testing.B) (*Flood, Query) {
	b.Helper()
	s := &selectBenchState
	s.once.Do(func() {
		const n = 1_000_000
		rng := rand.New(rand.NewSource(1215))
		cities := []string{"atlanta", "boston", "chicago", "denver", "houston", "miami", "nyc", "seattle"}
		ts := make([]int64, n)
		fare := make([]float64, n)
		city := make([]string, n)
		for i := 0; i < n; i++ {
			ts[i] = rng.Int63n(1_000_000)
			fare[i] = float64(rng.Intn(10_000)) / 100
			city[i] = cities[rng.Intn(len(cities))]
		}
		s.schema = NewSchema().Int64("ts").Float64("fare", 2).String("city")
		tb := s.schema.NewTableBuilder()
		if err := tb.SetInt64Column("ts", ts); err != nil {
			panic(err)
		}
		if err := tb.SetFloat64Column("fare", fare); err != nil {
			panic(err)
		}
		if err := tb.SetStringColumn("city", city); err != nil {
			panic(err)
		}
		tbl, err := tb.Build()
		if err != nil {
			panic(err)
		}
		s.idx, err = BuildWithLayout(tbl, Layout{
			GridDims: []int{0, 2}, GridCols: []int{64, 8}, SortDim: 1, Flatten: true,
		}, &Options{Schema: s.schema})
		if err != nil {
			panic(err)
		}
		// ~3% of one city's rows: a few thousand matches, well under the
		// parallel cutover, so the benchmark pins the zero-alloc sequential
		// retrieval path.
		s.q = s.schema.Where().
			WithStringEquals("city", "nyc").
			WithIntRange("ts", 100_000, 130_000).
			Query()
	})
	return s.idx, s.q
}

// BenchmarkSelectRows1M measures end-to-end row retrieval on a 1M-row typed
// table: execute a city+time predicate, materialize the matching row ids,
// and walk the cursor decoding one string and one int per row. Recorded in
// BENCH_scan.json by `make bench`.
func BenchmarkSelectRows1M(b *testing.B) {
	idx, q := selectBenchSetup(b)
	var rowsOut int64
	var sink int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows, _ := idx.Select(q, "ts", "city")
		for rows.Next() {
			sink += rows.Int64(0)
		}
		rowsOut += int64(rows.Len())
		rows.Close()
	}
	b.StopTimer()
	if rowsOut == 0 {
		b.Fatal("benchmark query matched nothing")
	}
	b.ReportMetric(float64(rowsOut)/float64(b.N), "rows/op")
	_ = sink
}

// BenchmarkSelectRows1MTopK adds an OrderBy(fare, 10) top-k pass over the
// same retrieval, the common serving shape for "10 cheapest matching rides".
func BenchmarkSelectRows1MTopK(b *testing.B) {
	idx, q := selectBenchSetup(b)
	var sink float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows, _ := idx.Select(q, "fare")
		rows.OrderBy("fare", 10)
		for rows.Next() {
			sink += rows.Float64(0)
		}
		rows.Close()
	}
	_ = sink
}
