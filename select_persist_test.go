package flood

import (
	"bytes"
	"slices"
	"testing"
)

// TestSelectParallelMatchesSequential pins Select through the morsel engine:
// a result set far past the parallel cutover must equal the pinned
// sequential path row for row (ids are sorted, so merge order cannot leak).
// Runs in the CI race matrix.
func TestSelectParallelMatchesSequential(t *testing.T) {
	fx := newTypedFixture(t, 120_000, 31)
	seqIdx, err := BuildWithLayout(fx.tbl, fixtureLayout(fx), &Options{Schema: fx.schema, ParallelCutoverRows: -1})
	if err != nil {
		t.Fatal(err)
	}
	parIdx, err := BuildWithLayout(fx.tbl, fixtureLayout(fx), &Options{Schema: fx.schema, ParallelCutoverRows: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range fixtureQueries(fx) {
		seqRows, _ := seqIdx.Select(tc.q)
		parRows, _ := parIdx.Select(tc.q)
		if !slices.Equal(seqRows.rc.IDs(), parRows.rc.IDs()) {
			t.Fatalf("%s: parallel Select ids diverge from sequential (%d vs %d rows)",
				tc.name, parRows.Len(), seqRows.Len())
		}
		seqRows.Close()
		parRows.Close()
	}
}

// TestDeltaMergeSaveLoadRoundTrip covers the persist path after a delta
// merge: the merged base saves, loads, and answers Select identically.
func TestDeltaMergeSaveLoadRoundTrip(t *testing.T) {
	fx := newTypedFixture(t, 3000, 32)
	idx, err := BuildWithLayout(fx.tbl, fixtureLayout(fx), &Options{Schema: fx.schema})
	if err != nil {
		t.Fatal(err)
	}
	d := NewDeltaIndex(idx, 0)
	extra := newTypedFixture(t, 500, 33)
	for i := range extra.ts {
		// Reuse city values from the fitted dictionary: the merged rows
		// must decode through the original schema.
		row, err := fx.schema.EncodeRow(extra.ts[i], extra.fare[i], fx.city[i%len(fx.city)], extra.pickup[i])
		if err != nil {
			t.Fatal(err)
		}
		if err := d.Insert(row); err != nil {
			t.Fatal(err)
		}
	}
	if err := d.Merge(); err != nil {
		t.Fatal(err)
	}
	if d.Pending() != 0 {
		t.Fatalf("pending = %d after merge", d.Pending())
	}

	var buf bytes.Buffer
	if err := d.Base().Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Schema() == nil {
		t.Fatal("schema not auto-restored from the snapshot (no SetSchema needed)")
	}
	if loaded.Table().NumRows() != 3500 {
		t.Fatalf("loaded table has %d rows, want 3500", loaded.Table().NumRows())
	}
	for _, tc := range fixtureQueries(fx) {
		before, _ := d.Select(tc.q)
		after, _ := loaded.Select(tc.q)
		got := collectRows(t, after)
		want := collectRows(t, before)
		if !slices.Equal(got, want) {
			t.Fatalf("%s: loaded index returned %d rows, merged index %d", tc.name, len(got), len(want))
		}
		before.Close()
		after.Close()
	}
}

// TestDeltaSizeBytesCountsBufferCapacity pins the memory-reporting fix:
// after a large insert burst the buffered columns are charged at slice
// capacity, which append doubling grows past the pending row count.
func TestDeltaSizeBytesCountsBufferCapacity(t *testing.T) {
	fx := newTypedFixture(t, 1000, 34)
	idx, err := BuildWithLayout(fx.tbl, fixtureLayout(fx), &Options{Schema: fx.schema})
	if err != nil {
		t.Fatal(err)
	}
	d := NewDeltaIndex(idx, 0)
	base := d.SizeBytes()
	const burst = 10_000
	row, err := fx.schema.EncodeRow(int64(1), 2.50, fx.city[0], fx.pickup[0])
	if err != nil {
		t.Fatal(err)
	}
	var capSum int64
	for i := 0; i < burst; i++ {
		if err := d.Insert(row); err != nil {
			t.Fatal(err)
		}
	}
	for _, col := range d.buffer {
		capSum += int64(cap(col)) * 8
	}
	if capSum <= int64(burst)*int64(len(d.buffer))*8 {
		t.Fatalf("test premise broken: capacity %d not above %d", capSum, burst*len(d.buffer)*8)
	}
	if got := d.SizeBytes(); got != base+capSum {
		t.Fatalf("SizeBytes = %d, want base %d + buffer capacity %d", got, base, capSum)
	}
	// Merge returns the capacity accounting to (near) zero buffered bytes.
	if err := d.Merge(); err != nil {
		t.Fatal(err)
	}
	if got := d.SizeBytes(); got < d.base.SizeBytes() {
		t.Fatalf("post-merge SizeBytes = %d below base metadata", got)
	}
}
