package flood

import (
	"fmt"
	"math/rand"
	"slices"
	"testing"
	"time"
)

// fixtureLayout is a hand-picked layout over the typed fixture (grid on ts
// and city, sorted by fare) so Select tests skip the optimizer.
func fixtureLayout(fx *typedFixture) Layout {
	return Layout{GridDims: []int{0, 2}, GridCols: []int{8, 4}, SortDim: 1, Flatten: true}
}

// rowTuple renders one matched row as a comparable string over all four
// fixture columns.
func rowTuple(ts int64, fare float64, city string, pickup time.Time) string {
	return fmt.Sprintf("%d|%.2f|%s|%d", ts, fare, city, pickup.Unix())
}

// collectRows drains a Rows cursor (projected over all fixture columns) into
// sorted tuples.
func collectRows(t *testing.T, rows *Rows) []string {
	t.Helper()
	if got := rows.Columns(); !slices.Equal(got, []string{"ts", "fare", "city", "pickup"}) {
		t.Fatalf("projection = %v", got)
	}
	var out []string
	for rows.Next() {
		out = append(out, rowTuple(rows.Int64(0), rows.Float64(1), rows.String(2), rows.Time(3)))
	}
	if len(out) != rows.Len() {
		t.Fatalf("cursor yielded %d rows, Len says %d", len(out), rows.Len())
	}
	slices.Sort(out)
	return out
}

// bruteForce filters the fixture's logical rows (plus any extra logical rows
// appended after build) with the given predicate.
func bruteForce(fx *typedFixture, match func(i int) bool) []string {
	var out []string
	for i := range fx.ts {
		if match(i) {
			out = append(out, rowTuple(fx.ts[i], fx.fare[i], fx.city[i], fx.pickup[i]))
		}
	}
	slices.Sort(out)
	return out
}

// fixtureQueries is a mix of typed predicates exercising every encoder, each
// paired with its logical brute-force check.
func fixtureQueries(fx *typedFixture) []struct {
	name  string
	q     Query
	match func(i int) bool
} {
	t0 := time.Date(2023, 1, 3, 0, 0, 0, 0, time.UTC)
	t1 := time.Date(2023, 1, 17, 0, 0, 0, 0, time.UTC)
	return []struct {
		name  string
		q     Query
		match func(i int) bool
	}{
		{
			"string+float",
			fx.schema.Where().WithStringEquals("city", "nyc").WithFloatRange("fare", 1.5, 9.99).Query(),
			func(i int) bool { return fx.city[i] == "nyc" && fx.fare[i] >= 1.5 && fx.fare[i] <= 9.99 },
		},
		{
			"time-range",
			fx.schema.Where().WithTimeRange("pickup", t0, t1).Query(),
			func(i int) bool { return !fx.pickup[i].Before(t0) && !fx.pickup[i].After(t1) },
		},
		{
			"prefix+int",
			fx.schema.Where().WithPrefix("city", "s").WithIntRange("ts", 10_000, 70_000).Query(),
			func(i int) bool {
				return fx.city[i] != "" && fx.city[i][0] == 's' && fx.ts[i] >= 10_000 && fx.ts[i] <= 70_000
			},
		},
		{
			"unfiltered",
			fx.schema.Where().Query(),
			func(i int) bool { return true },
		},
		{
			"empty",
			fx.schema.Where().WithStringEquals("city", "gotham").Query(),
			func(i int) bool { return false },
		},
	}
}

func TestSelectMatchesBruteForceFlood(t *testing.T) {
	fx := newTypedFixture(t, 5000, 21)
	idx, err := BuildWithLayout(fx.tbl, fixtureLayout(fx), &Options{Schema: fx.schema})
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range fixtureQueries(fx) {
		rows, st := idx.Select(tc.q)
		got := collectRows(t, rows)
		want := bruteForce(fx, tc.match)
		if !slices.Equal(got, want) {
			t.Fatalf("%s: Select returned %d rows, brute force %d", tc.name, len(got), len(want))
		}
		if st.Matched != int64(len(want)) {
			t.Fatalf("%s: stats matched %d, want %d", tc.name, st.Matched, len(want))
		}
		rows.Close()
	}
}

func TestSelectProjectionAndRowIDs(t *testing.T) {
	fx := newTypedFixture(t, 2000, 22)
	idx, err := BuildWithLayout(fx.tbl, fixtureLayout(fx), &Options{Schema: fx.schema})
	if err != nil {
		t.Fatal(err)
	}
	q := fx.schema.Where().WithStringEquals("city", "boston").Query()
	rows, _ := idx.Select(q, "fare", "city")
	defer rows.Close()
	if got := rows.Columns(); !slices.Equal(got, []string{"fare", "city"}) {
		t.Fatalf("projection = %v", got)
	}
	last := int64(-1)
	for rows.Next() {
		if rows.String(1) != "boston" {
			t.Fatalf("row %d city = %q", rows.RowID(), rows.String(1))
		}
		if rows.RowID() <= last {
			t.Fatalf("row ids not ascending: %d after %d", rows.RowID(), last)
		}
		last = rows.RowID()
		if v := rows.Value(0); v != rows.Float64(0) {
			t.Fatalf("Value(0) = %v, Float64(0) = %v", v, rows.Float64(0))
		}
	}
	// Re-iteration after Reset sees the same count.
	n := rows.Len()
	rows.Reset()
	count := 0
	for rows.Next() {
		count++
	}
	if count != n {
		t.Fatalf("re-iteration saw %d rows, want %d", count, n)
	}
}

func TestSelectDeltaWithPending(t *testing.T) {
	fx := newTypedFixture(t, 4000, 23)
	// Build the index over the first 3000 rows; insert the remaining 1000
	// through the delta buffer.
	cut := 3000
	head := &typedFixture{
		schema: fx.schema,
		ts:     fx.ts[:cut], fare: fx.fare[:cut], city: fx.city[:cut], pickup: fx.pickup[:cut],
	}
	b := fx.schema.NewTableBuilder()
	if err := b.SetInt64Column("ts", head.ts); err != nil {
		t.Fatal(err)
	}
	if err := b.SetFloat64Column("fare", head.fare); err != nil {
		t.Fatal(err)
	}
	if err := b.SetStringColumn("city", head.city); err != nil {
		t.Fatal(err)
	}
	if err := b.SetTimeColumn("pickup", head.pickup); err != nil {
		t.Fatal(err)
	}
	tbl, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	idx, err := BuildWithLayout(tbl, fixtureLayout(fx), &Options{Schema: fx.schema})
	if err != nil {
		t.Fatal(err)
	}
	d := NewDeltaIndex(idx, 0)
	for i := cut; i < len(fx.ts); i++ {
		row, err := fx.schema.EncodeRow(fx.ts[i], fx.fare[i], fx.city[i], fx.pickup[i])
		if err != nil {
			t.Fatal(err)
		}
		if err := d.Insert(row); err != nil {
			t.Fatal(err)
		}
	}
	baseRows := int64(cut)
	for _, tc := range fixtureQueries(fx) {
		rows, _ := d.Select(tc.q)
		// Delta rows must sit past the base id range.
		sawDelta := false
		for rows.Next() {
			if rows.RowID() >= baseRows {
				sawDelta = true
			}
		}
		rows.Reset()
		got := collectRows(t, rows)
		want := bruteForce(fx, tc.match)
		if !slices.Equal(got, want) {
			t.Fatalf("%s: delta Select returned %d rows, brute force %d", tc.name, len(got), len(want))
		}
		if tc.name == "unfiltered" && !sawDelta {
			t.Fatal("unfiltered select never reached the pending rows")
		}
		rows.Close()
	}
	// After a merge the same queries still agree.
	if err := d.Merge(); err != nil {
		t.Fatal(err)
	}
	for _, tc := range fixtureQueries(fx) {
		rows, _ := d.Select(tc.q)
		if got, want := collectRows(t, rows), bruteForce(fx, tc.match); !slices.Equal(got, want) {
			t.Fatalf("%s: post-merge Select returned %d rows, brute force %d", tc.name, len(got), len(want))
		}
		rows.Close()
	}
}

func TestSelectBaselineEquivalence(t *testing.T) {
	fx := newTypedFixture(t, 3000, 24)
	for _, kind := range []BaselineKind{FullScan, KDTree} {
		bidx, err := BuildBaseline(kind, fx.tbl, BaselineOptions{})
		if err != nil {
			t.Fatal(err)
		}
		for _, tc := range fixtureQueries(fx) {
			rows, _ := fx.schema.Select(bidx, tc.q)
			got := collectRows(t, rows)
			want := bruteForce(fx, tc.match)
			if !slices.Equal(got, want) {
				t.Fatalf("%s/%s: baseline Select returned %d rows, brute force %d",
					kind, tc.name, len(got), len(want))
			}
			rows.Close()
		}
	}
}

func TestSelectOrUnionsDisjuncts(t *testing.T) {
	fx := newTypedFixture(t, 3000, 25)
	idx, err := BuildWithLayout(fx.tbl, fixtureLayout(fx), &Options{Schema: fx.schema})
	if err != nil {
		t.Fatal(err)
	}
	// Two overlapping rectangles: the union must contain each matching row
	// exactly once.
	q1 := fx.schema.Where().WithFloatRange("fare", 0, 60).Query()
	q2 := fx.schema.Where().WithFloatRange("fare", 40, 99.99).WithStringEquals("city", "nyc").Query()
	rows, _ := fx.schema.SelectOr(idx, []Query{q1, q2})
	defer rows.Close()
	got := collectRows(t, rows)
	want := bruteForce(fx, func(i int) bool {
		return fx.fare[i] <= 60 || (fx.fare[i] >= 40 && fx.city[i] == "nyc")
	})
	if !slices.Equal(got, want) {
		t.Fatalf("SelectOr returned %d rows, brute force %d", len(got), len(want))
	}
}

func TestSelectOrderByTopK(t *testing.T) {
	fx := newTypedFixture(t, 3000, 26)
	idx, err := BuildWithLayout(fx.tbl, fixtureLayout(fx), &Options{Schema: fx.schema})
	if err != nil {
		t.Fatal(err)
	}
	q := fx.schema.Where().WithStringEquals("city", "chicago").Query()

	// Ground truth: all chicago fares sorted.
	var fares []float64
	for i := range fx.ts {
		if fx.city[i] == "chicago" {
			fares = append(fares, fx.fare[i])
		}
	}
	slices.Sort(fares)
	const k = 10

	rows, _ := idx.Select(q, "fare")
	rows.OrderBy("fare", k)
	var got []float64
	for rows.Next() {
		got = append(got, rows.Float64(0))
	}
	rows.Close()
	if !slices.Equal(got, fares[:k]) {
		t.Fatalf("OrderBy top-%d = %v, want %v", k, got, fares[:k])
	}

	rows, _ = idx.Select(q, "fare")
	rows.OrderByDesc("fare", k)
	got = got[:0]
	for rows.Next() {
		got = append(got, rows.Float64(0))
	}
	rows.Close()
	for i := range got {
		if want := fares[len(fares)-1-i]; got[i] != want {
			t.Fatalf("OrderByDesc[%d] = %v, want %v", i, got[i], want)
		}
	}

	// Unlimited OrderBy is a full sort.
	rows, _ = idx.Select(q, "fare")
	rows.OrderBy("fare", 0)
	got = got[:0]
	for rows.Next() {
		got = append(got, rows.Float64(0))
	}
	rows.Close()
	if !slices.Equal(got, fares) {
		t.Fatalf("full OrderBy returned %d rows, want %d in sorted order", len(got), len(fares))
	}
}

// TestSelectZeroAllocSequential pins the acceptance criterion: a sequential
// Select of <=32K rows performs zero heap allocations per operation in
// steady state (pooled cursor, pooled scanner and scratch, reused id
// buffer).
func TestSelectZeroAllocSequential(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts differ under -race")
	}
	fx := newTypedFixture(t, 20_000, 27)
	// Negative cutover pins the sequential path regardless of result size.
	idx, err := BuildWithLayout(fx.tbl, fixtureLayout(fx), &Options{Schema: fx.schema, ParallelCutoverRows: -1})
	if err != nil {
		t.Fatal(err)
	}
	q := fx.schema.Where().WithFloatRange("fare", 10, 80).Query()

	// Warm the pools and size the id buffer.
	rows, _ := idx.Select(q, "ts", "fare")
	n := rows.Len()
	if n == 0 || n > 32*1024 {
		t.Fatalf("fixture query matches %d rows; want 0 < n <= 32768", n)
	}
	rows.Close()

	var sink int64
	allocs := testing.AllocsPerRun(50, func() {
		rows, _ := idx.Select(q, "ts", "fare")
		for rows.Next() {
			sink += rows.Int64(0)
		}
		rows.Close()
	})
	if allocs != 0 {
		t.Fatalf("sequential Select allocated %.1f times per op, want 0 (sink %d)", allocs, sink)
	}
}

func TestSelectUnknownColumnPanics(t *testing.T) {
	fx := newTypedFixture(t, 200, 28)
	idx, err := BuildWithLayout(fx.tbl, fixtureLayout(fx), &Options{Schema: fx.schema})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("unknown projection column did not panic")
		}
	}()
	idx.Select(fx.schema.Where().Query(), "nope")
}

func TestSelectWithoutSchemaRawAccess(t *testing.T) {
	tbl := MustTable(t)
	idx, err := BuildWithLayout(tbl, Layout{GridDims: []int{0}, GridCols: []int{4}, SortDim: 1, Flatten: true}, nil)
	if err != nil {
		t.Fatal(err)
	}
	q := NewQuery(2).WithRange(0, 10, 50)
	rows, _ := idx.Select(q)
	defer rows.Close()
	n := 0
	for rows.Next() {
		if v := rows.Int64(0); v < 10 || v > 50 {
			t.Fatalf("raw select row outside range: %d", v)
		}
		n++
	}
	if n != rows.Len() || n == 0 {
		t.Fatalf("raw select yielded %d rows (Len %d)", n, rows.Len())
	}
	defer func() {
		if recover() == nil {
			t.Fatal("typed accessor without schema did not panic")
		}
	}()
	rows.Reset()
	rows.Next()
	rows.Float64(0)
}

// MustTable builds a tiny raw two-column table for schema-less tests.
func MustTable(t *testing.T) *Table {
	t.Helper()
	rng := rand.New(rand.NewSource(9))
	a := make([]int64, 1000)
	b := make([]int64, 1000)
	for i := range a {
		a[i] = rng.Int63n(100)
		b[i] = rng.Int63n(1000)
	}
	tbl, err := NewTable([]string{"a", "b"}, [][]int64{a, b})
	if err != nil {
		t.Fatal(err)
	}
	return tbl
}

func TestSelectOrDeltaPinsBaseFirst(t *testing.T) {
	fx := newTypedFixture(t, 1000, 43)
	idx, err := BuildWithLayout(fx.tbl, fixtureLayout(fx), &Options{Schema: fx.schema})
	if err != nil {
		t.Fatal(err)
	}
	d := NewDeltaIndex(idx, 0)
	// Pending rows that ONLY the first disjunct matches: without base
	// pinning the delta table would register at id 0.
	row, err := fx.schema.EncodeRow(int64(999_999), 1.00, fx.city[0], fx.pickup[0])
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := d.Insert(row); err != nil {
			t.Fatal(err)
		}
	}
	q1 := fx.schema.Where().WithIntRange("ts", 999_999, 999_999).Query() // delta only
	q2 := fx.schema.Where().WithIntRange("ts", 0, 50_000).Query()        // base rows
	rows, _ := fx.schema.SelectOr(d, []Query{q1, q2})
	defer rows.Close()
	baseRows := int64(fx.tbl.NumRows())
	sawBase, sawDelta := false, false
	for rows.Next() {
		if rows.Int64(0) == 999_999 {
			sawDelta = true
			if rows.RowID() < baseRows {
				t.Fatalf("pending row got base-range id %d", rows.RowID())
			}
		} else {
			sawBase = true
			if rows.RowID() >= baseRows {
				t.Fatalf("base row got id %d past the base range", rows.RowID())
			}
		}
	}
	if !sawBase || !sawDelta {
		t.Fatalf("union missing a side: base=%v delta=%v", sawBase, sawDelta)
	}
}

func TestRowsCloseIdempotent(t *testing.T) {
	fx := newTypedFixture(t, 500, 44)
	idx, err := BuildWithLayout(fx.tbl, fixtureLayout(fx), &Options{Schema: fx.schema})
	if err != nil {
		t.Fatal(err)
	}
	q := fx.schema.Where().Query()
	rows, _ := idx.Select(q)
	rows.Close()
	rows.Close() // double close must not double-pool the cursor
	// Two subsequent selects must get distinct cursors.
	r1, _ := idx.Select(q)
	r2, _ := idx.Select(q)
	if r1 == r2 {
		t.Fatal("double Close leaked the same cursor to two Selects")
	}
	r1.Close()
	r2.Close()
}

func TestOrderByUnknownColumnPanicsOnEmptyResult(t *testing.T) {
	fx := newTypedFixture(t, 200, 45)
	idx, err := BuildWithLayout(fx.tbl, fixtureLayout(fx), &Options{Schema: fx.schema})
	if err != nil {
		t.Fatal(err)
	}
	q := fx.schema.Where().WithStringEquals("city", "gotham").Query() // matches nothing
	rows, _ := idx.Select(q)
	defer rows.Close()
	defer func() {
		if recover() == nil {
			t.Fatal("OrderBy on a typo'd column must panic even with zero matches")
		}
	}()
	rows.OrderBy("no_such_col", 5)
}
