// Sharded Flood: a partitioned engine over independent adaptive shards.
//
// ShardedIndex splits the table by range on one dimension — split points
// fitted from a learned CDF over a sample, so shards stay balanced under
// skew — and runs a full adaptive Flood per shard. Queries prune shards
// whose key range misses the predicate on the split dimension, then fan the
// survivors out in parallel with a shared cancellation signal and LIMIT
// budget; maintenance is shard-local (drift in one shard relearns only that
// shard, the others keep serving on their epochs untouched). See
// docs/SHARDING.md for the design.

package flood

import (
	"context"
	"fmt"
	"sync"

	"flood/internal/colstore"
	"flood/internal/core"
	"flood/internal/query"
	"flood/internal/shard"
)

// shardStride carves the Select row-id space into fixed per-shard regions:
// shard s's rows occupy ids [s<<shardStrideBits, (s+1)<<shardStrideBits).
// The stride (2^40 rows) is far above any single shard's base + insert-log
// size, so id→shard resolution is pure arithmetic and per-shard local ids
// are exactly the ids the shard's own Select would produce.
const shardStrideBits = 40

// shardStride is the id-space width reserved per shard.
const shardStride = int64(1) << shardStrideBits

// ShardedOptions tunes NewSharded. Nil picks 4 shards split on the
// dimension the training workload filters most often.
type ShardedOptions struct {
	// Shards is the target shard count (default 4). The effective count can
	// come out lower when the split column has too few distinct values to
	// support that many balanced partitions.
	Shards int
	// Dim is the split dimension (physical column index). Negative picks
	// the dimension filtered by the most training queries — the choice that
	// maximizes how often a predicate prunes shards.
	Dim int
	// Splits overrides learned split fitting with explicit, strictly
	// increasing split points (shard i holds [Splits[i-1], Splits[i])).
	// When set, Shards is ignored.
	Splits []int64
	// Build supplies the per-shard build options. A nil CostModel is
	// calibrated once on the full table and shared by every shard build, so
	// the calibration cost is paid once, not per shard.
	Build *Options
	// Adaptive tunes each shard's adaptive facade (nil picks defaults).
	Adaptive *AdaptiveConfig
}

func (o *ShardedOptions) withDefaults() ShardedOptions {
	out := ShardedOptions{Dim: -1}
	if o != nil {
		out = *o
	}
	if out.Shards <= 0 {
		out.Shards = 4
	}
	return out
}

// ShardStat is one shard's slice of a ShardedIndex's state, for stats
// endpoints and skew diagnostics.
type ShardStat struct {
	// Shard is the shard's index in split order.
	Shard int
	// Lo and Hi are the shard's inclusive key bounds on the split dimension.
	Lo, Hi int64
	// Rows is the shard's live row count (excluding tombstones).
	Rows int
	// Pending is the shard's unmerged insert-log row count.
	Pending int
	// Epoch counts the shard's completed generation swaps.
	Epoch int64
	// Relearns and Merges count the shard's completed background rebuilds.
	Relearns int64
	Merges   int64
	// Queries is the number of queries the shard has served.
	Queries int64
}

// ShardedIndex is a partitioned serving engine: independent adaptive Flood
// indexes over disjoint key ranges of one split dimension, behind the same
// Execute/ExecuteContext/ExecuteBatchContext/Select/Insert/Delete/Update
// surface as the flat facades. Queries whose predicate on the split
// dimension misses a shard's range never touch that shard; queries fully
// contained in one shard delegate to it directly on the zero-allocation
// path. Mutations route by split point. Each shard adapts independently —
// its own drift monitor, workload reservoir, and background rebuilds — so a
// relearn in one shard leaves every other shard's epoch untouched.
//
// Concurrency matches AdaptiveIndex per shard: queries and mutations from
// any number of goroutines. Cross-shard updates that reassign the split
// dimension are atomic per shard, not transactional across shards (see
// Update).
type ShardedIndex struct {
	router *shard.Router
	shards []*AdaptiveIndex
	schema *Schema
	names  []string

	// durable state; nil/empty for the in-memory form. dur[i] persists
	// shards[i]; root is the manifest directory. ckptMu serializes
	// checkpoints, matching DurableIndex.
	dur    []*DurableIndex
	root   string
	ckptMu sync.Mutex
}

// NewSharded partitions tbl on a split dimension and builds one adaptive
// Flood per shard, in parallel. Split points are fitted from a learned CDF
// over a sample of the split column so shards balance under skew; each
// shard's layout is learned against the training queries overlapping its
// key range (clipped to the shard's bounds), sharing one cost model
// calibrated on the full table. The table is not retained; each shard holds
// a reordered copy of its partition.
func NewSharded(tbl *Table, train []Query, opts *ShardedOptions) (*ShardedIndex, error) {
	o := opts.withDefaults()
	dim := o.Dim
	if dim < 0 {
		dim = shard.ChooseDim(train, tbl.NumCols())
	}
	if dim >= tbl.NumCols() {
		return nil, fmt.Errorf("flood: sharded split dimension %d out of range (table has %d columns)", dim, tbl.NumCols())
	}
	splits := o.Splits
	if splits == nil {
		splits = shard.FitSplits(tbl.Raw(dim), o.Shards)
	}
	r, err := shard.NewRouter(dim, splits)
	if err != nil {
		return nil, err
	}
	floods, err := buildShards(tbl, train, r, o.Build)
	if err != nil {
		return nil, err
	}
	return newShardedFromFloods(r, floods, o.Adaptive), nil
}

// newShardedFromFloods assembles the facade over per-shard built indexes.
func newShardedFromFloods(r *shard.Router, floods []*Flood, cfg *AdaptiveConfig) *ShardedIndex {
	s := &ShardedIndex{
		router: r,
		shards: make([]*AdaptiveIndex, len(floods)),
		schema: floods[0].schema,
		names:  floods[0].Table().Names(),
	}
	for i, f := range floods {
		s.shards[i] = NewAdaptiveIndex(f, cfg)
	}
	return s
}

// buildShards partitions tbl by the router and builds every shard index in
// parallel — the build-time speedup scales with cores because each shard's
// layout search and construction run independently. One cost model is
// calibrated up front (on the full table) and shared, so no shard pays the
// calibration cost and empty shards (possible under explicit splits) build
// cleanly.
func buildShards(tbl *Table, train []Query, r *shard.Router, bopts *Options) ([]*Flood, error) {
	o := bopts.orDefault()
	if o.CostModel == nil {
		m, err := Calibrate(tbl, train, &o)
		if err != nil {
			return nil, fmt.Errorf("flood: calibrating shared shard cost model: %w", err)
		}
		o.CostModel = m
	}
	// Decode every column once; the per-shard gathers index into these
	// read-only slices from their goroutines.
	raw := make([][]int64, tbl.NumCols())
	for c := range raw {
		raw[c] = tbl.Raw(c)
	}
	parts := shard.Partition(raw[r.Dim()], r)
	names := tbl.Names()
	floods := make([]*Flood, len(parts))
	errs := make([]error, len(parts))
	var wg sync.WaitGroup
	for i := range parts {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sub := gatherTable(names, raw, parts[i])
			floods[i], errs[i] = Build(sub, clipWorkload(train, r, i), &o)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("flood: building shard %d: %w", i, err)
		}
	}
	return floods, nil
}

// gatherTable materializes the rows of one partition as a fresh table.
func gatherTable(names []string, raw [][]int64, rows []int) *Table {
	cols := make([][]int64, len(raw))
	for c := range raw {
		col := make([]int64, len(rows))
		src := raw[c]
		for j, row := range rows {
			col[j] = src[row]
		}
		cols[c] = col
	}
	return colstore.MustNewTable(names, cols)
}

// clipWorkload selects the training queries overlapping shard i's key range
// and clips their split-dimension ranges to the shard's bounds, so each
// shard's layout is learned against the selectivities it will actually
// serve. A shard no training query overlaps falls back to the full
// workload: Build requires a non-empty sample, and the global workload is
// the best available prior.
func clipWorkload(train []Query, r *shard.Router, i int) []Query {
	lo, hi := r.Bounds(i)
	dim := r.Dim()
	out := make([]Query, 0, len(train))
	for _, q := range train {
		if dim >= len(q.Ranges) {
			out = append(out, q)
			continue
		}
		rg := q.Ranges[dim]
		if rg.Present && (rg.Max < lo || rg.Min > hi) {
			continue
		}
		if rg.Present && (rg.Min < lo || rg.Max > hi) {
			clipped := q
			clipped.Ranges = append([]Range(nil), q.Ranges...)
			clipped.Ranges[dim].Min = max(rg.Min, lo)
			clipped.Ranges[dim].Max = min(rg.Max, hi)
			q = clipped
		}
		out = append(out, q)
	}
	if len(out) == 0 {
		return train
	}
	return out
}

// prune returns the inclusive shard interval [first, last] a query's
// split-dimension range can reach; first > last means the predicate is
// empty and no shard needs scanning. Allocation-free.
func (s *ShardedIndex) prune(q Query) (first, last int) {
	dim := s.router.Dim()
	lo, hi := int64(NegInf), int64(PosInf)
	if dim < len(q.Ranges) {
		if rg := q.Ranges[dim]; rg.Present {
			lo, hi = rg.Min, rg.Max
		}
	}
	if lo > hi {
		return 1, 0
	}
	return s.router.ShardRange(lo, hi)
}

// executeShardSequential runs q against one shard's current generation on
// the sequential kernel — fan-out already provides cross-shard parallelism,
// mirroring the batch paths' inter-query idiom — and feeds the result to
// that shard's drift monitor and workload sample.
func executeShardSequential(a *AdaptiveIndex, q Query, agg Aggregator) Stats {
	ep := a.epoch.Load()
	st := ep.flood.idx.ExecuteSequential(q, agg)
	if n := ep.log.rows(); n > 0 {
		st.Add(ep.log.scan(q, n, agg, nil))
	}
	a.observe(ep, q, st)
	return st
}

// Execute serves one query: shards outside the predicate's split-dimension
// range are pruned, a single surviving shard serves the query directly (the
// no-merge fast path — zero allocations, identical to the flat engine), and
// multiple survivors fan out in parallel with per-shard aggregator clones
// merged at the end. Every surviving shard observes the query in its own
// drift monitor, so adaptation stays shard-local.
func (s *ShardedIndex) Execute(q Query, agg Aggregator) Stats {
	if rc, ok := agg.(*query.RowCollector); ok {
		return s.collectShards(nil, q, rc, 0)
	}
	first, last := s.prune(q)
	if first > last {
		return Stats{}
	}
	if first == last {
		return s.shards[first].Execute(q, agg)
	}
	return s.fanOut(q, agg, first, last)
}

// collectShards serves a row-collecting query shard by shard in split
// order: each surviving shard's sources are pinned at that shard's id
// stride before its scan, so every collected id carries its owning shard in
// the high bits (id >> shardStrideBits) and the shard-local remainder is
// exactly the id the shard's own Select would have produced — the contract
// DeleteRows routes by. Sequential by design: the per-shard stride pinning
// is ordered, and collectors aren't shared across workers anyway.
func (s *ShardedIndex) collectShards(ctl *query.Control, q Query, rc *query.RowCollector, cutover int) Stats {
	first, last := s.prune(q)
	var total Stats
	for i := first; i <= last && i >= 0; i++ {
		if ctl.Stopped() {
			break
		}
		a := s.shards[i]
		ep := a.epoch.Load()
		rc.SkipTo(int64(i) * shardStride)
		rc.PinSource(ep.flood.Table())
		st := executeEpochControl(ep, ctl, q, rc, cutover)
		if !ctl.Stopped() {
			a.observe(ep, q, st)
		}
		total.Add(st)
	}
	return total
}

// fanOut runs q on shards [first, last] in parallel over the shared worker
// pool, each into its own pooled clone of agg, and merges. Non-mergeable
// aggregators fall back to a sequential pass.
func (s *ShardedIndex) fanOut(q Query, agg Aggregator, first, last int) Stats {
	m, ok := agg.(query.Mergeable)
	if !ok {
		var total Stats
		for i := first; i <= last; i++ {
			total.Add(executeShardSequential(s.shards[i], q, agg))
		}
		return total
	}
	n := last - first + 1
	clones := make([]query.Mergeable, n)
	stats := make([]Stats, n)
	core.RunBatch(n, func(i int) {
		c := query.GetClone(m)
		if c == nil {
			c = m.CloneEmpty()
		}
		stats[i] = executeShardSequential(s.shards[first+i], q, c)
		clones[i] = c
	})
	var total Stats
	for i, c := range clones {
		total.Add(stats[i])
		m.Merge(c)
		query.PutClone(c)
	}
	return total
}

// ExecuteContext is Execute under ctx: all surviving shards share one
// cancellation signal, and a stop returns the partial Stats with
// ErrCanceled. See Flood.ExecuteContext.
func (s *ShardedIndex) ExecuteContext(ctx context.Context, q Query, agg Aggregator) (Stats, error) {
	return runExecute(ctx,
		func() Stats { return s.Execute(q, agg) },
		func(ctl *query.Control) Stats { return s.executeControl(ctl, q, agg, 0) })
}

// executeControl threads an externally owned control through the pruned
// fan-out: every shard scan draws cancellation and the LIMIT budget from
// the same control, so `LIMIT n` over k surviving shards delivers at most n
// rows in total and stops scanning globally once the budget is dry.
// RowCollector aggregators are delivered shard-sequentially with per-shard
// id strides (see selectInto); everything else fans out in parallel.
func (s *ShardedIndex) executeControl(ctl *query.Control, q Query, agg Aggregator, cutover int) Stats {
	if rc, ok := agg.(*query.RowCollector); ok {
		return s.collectShards(ctl, q, rc, cutover)
	}
	first, last := s.prune(q)
	if first > last {
		return Stats{}
	}
	if first == last {
		a := s.shards[first]
		ep := a.epoch.Load()
		st := executeEpochControl(ep, ctl, q, agg, cutover)
		if !ctl.Stopped() {
			a.observe(ep, q, st)
		}
		return st
	}
	m, mergeable := agg.(query.Mergeable)
	if !mergeable || ctl == nil {
		// Sequential fan-out: non-mergeables can't clone, and with no
		// control there is nothing to share across parallel workers anyway.
		var total Stats
		for i := first; i <= last; i++ {
			if ctl.Stopped() {
				break
			}
			a := s.shards[i]
			ep := a.epoch.Load()
			st := executeEpochControl(ep, ctl, q, agg, cutover)
			if !ctl.Stopped() {
				a.observe(ep, q, st)
			}
			total.Add(st)
		}
		return total
	}
	n := last - first + 1
	clones := make([]query.Mergeable, n)
	stats := make([]Stats, n)
	core.RunBatch(n, func(i int) {
		if ctl.Stopped() {
			return
		}
		c := query.GetClone(m)
		if c == nil {
			c = m.CloneEmpty()
		}
		a := s.shards[first+i]
		ep := a.epoch.Load()
		stats[i] = executeEpochControl(ep, ctl, q, c, cutover)
		if !ctl.Stopped() {
			a.observe(ep, q, stats[i])
		}
		clones[i] = c
	})
	var total Stats
	for i, c := range clones {
		if c == nil {
			continue
		}
		total.Add(stats[i])
		m.Merge(c)
		query.PutClone(c)
	}
	return total
}

// ExecuteBatch serves queries[i] into aggs[i] with inter-query parallelism
// over the shared worker pool; each query prunes and scans its surviving
// shards sequentially. len(queries) must equal len(aggs).
func (s *ShardedIndex) ExecuteBatch(queries []Query, aggs []Aggregator) []Stats {
	if len(queries) != len(aggs) {
		panic(fmt.Sprintf("flood: ExecuteBatch got %d queries but %d aggregators", len(queries), len(aggs)))
	}
	stats := make([]Stats, len(queries))
	core.RunBatch(len(queries), func(i int) {
		first, last := s.prune(queries[i])
		for sh := first; sh <= last && sh >= 0; sh++ {
			stats[i].Add(executeShardSequential(s.shards[sh], queries[i], aggs[i]))
		}
	})
	return stats
}

// ExecuteBatchContext is ExecuteBatch under ctx: one cancellation stops
// every query in the batch, queries not yet started are skipped, and the
// partial per-query stats return with ErrCanceled. The serving tier's
// micro-batching collector drives the sharded engine through this path.
func (s *ShardedIndex) ExecuteBatchContext(ctx context.Context, queries []Query, aggs []Aggregator) ([]Stats, error) {
	if len(queries) != len(aggs) {
		panic(fmt.Sprintf("flood: ExecuteBatch got %d queries but %d aggregators", len(queries), len(aggs)))
	}
	return runExecuteBatch(ctx, len(queries),
		func() []Stats { return s.ExecuteBatch(queries, aggs) },
		func(ctl *query.Control) []Stats {
			stats := make([]Stats, len(queries))
			core.RunBatch(len(queries), func(i int) {
				if ctl.Stopped() {
					return
				}
				first, last := s.prune(queries[i])
				for sh := first; sh <= last && sh >= 0; sh++ {
					if ctl.Stopped() {
						return
					}
					a := s.shards[sh]
					ep := a.epoch.Load()
					st := ep.flood.idx.ExecuteSequentialControl(ctl, queries[i], aggs[i])
					if n := ep.log.rows(); n > 0 && !ctl.Stopped() {
						st.Add(ep.log.scan(queries[i], n, aggs[i], ctl))
					}
					if !ctl.Stopped() {
						a.observe(ep, queries[i], st)
					}
					stats[i].Add(st)
				}
			})
			return stats
		})
}

// ExecuteOr evaluates a disjunction (OR) of conjunctive queries: the
// rectangles decompose into disjoint pieces once, then each shard scans the
// pieces overlapping its key range. Row collectors tile shard-locally (see
// Select's id contract). Each shard that served at least one piece samples
// the original conjunctive shapes into its workload reservoir.
func (s *ShardedIndex) ExecuteOr(queries []Query, agg Aggregator) Stats {
	return s.executeOrShards(nil, queries, agg, 0)
}

// ExecuteOrContext is ExecuteOr under ctx; the pieces share one
// cancellation signal and limit budget across every shard.
func (s *ShardedIndex) ExecuteOrContext(ctx context.Context, queries []Query, agg Aggregator) (Stats, error) {
	return runExecute(ctx,
		func() Stats { return s.ExecuteOr(queries, agg) },
		func(ctl *query.Control) Stats { return s.executeOrShards(ctl, queries, agg, 0) })
}

// executeOrShards runs the decomposed pieces of a disjunction shard-by-
// shard under one shared control. The loop is shard-outer so a collector's
// id watermark moves monotonically through the per-shard strides — every
// source a shard registers (base, sealed log segments, transient suffix
// tables) lands inside that shard's stride region.
func (s *ShardedIndex) executeOrShards(ctl *query.Control, queries []Query, agg Aggregator, cutover int) Stats {
	pieces := query.Disjoint(queries)
	rc, isCollector := agg.(*query.RowCollector)
	var total Stats
	for i, a := range s.shards {
		if ctl.Stopped() {
			break
		}
		lo, hi := s.router.Bounds(i)
		served := false
		var ep *adaptiveEpoch
		for _, piece := range pieces {
			if ctl.Stopped() {
				break
			}
			dim := s.router.Dim()
			if dim < len(piece.Ranges) {
				if rg := piece.Ranges[dim]; rg.Present && (rg.Max < lo || rg.Min > hi) {
					continue
				}
			}
			if !served {
				ep = a.epoch.Load()
				if isCollector {
					rc.SkipTo(int64(i) * shardStride)
					rc.PinSource(ep.flood.Table())
				}
				served = true
			}
			total.Add(executeEpochControl(ep, ctl, piece, agg, cutover))
		}
		if served && !ctl.Stopped() {
			a.queries.Add(1)
			for _, q := range queries {
				a.sample.Add(q)
			}
		}
	}
	return total
}

// Insert routes the row to the shard owning its split-dimension value and
// appends it there; visibility, WAL acknowledgment (durable form), and
// merge scheduling are the owning shard's (see AdaptiveIndex.Insert).
func (s *ShardedIndex) Insert(row []int64) error {
	dim := s.router.Dim()
	if dim >= len(row) {
		return fmt.Errorf("flood: row has %d values, split dimension is %d", len(row), dim)
	}
	return s.target(s.router.Shard(row[dim])).Insert(row)
}

// Delete tombstones every live row matching q across the surviving shards
// and returns the total newly deleted. Per-shard deletes are atomic; the
// cross-shard sweep is not a transaction.
func (s *ShardedIndex) Delete(q Query) (int64, error) {
	first, last := s.prune(q)
	var total int64
	for i := first; i <= last && i >= 0; i++ {
		n, err := s.target(i).Delete(q)
		total += n
		if err != nil {
			return total, err
		}
	}
	return total, nil
}

// DeleteRows tombstones rows by their Select ids. Ids carry their owning
// shard in the high bits (the per-shard stride), so each id resolves to the
// shard that produced it and the shard-local position within it; stale ids
// follow AdaptiveIndex.DeleteRows' epoch caveat per shard.
func (s *ShardedIndex) DeleteRows(ids []int64) (int64, error) {
	groups := make([][]int64, len(s.shards))
	for _, id := range ids {
		sh := int(id >> shardStrideBits)
		if id < 0 || sh >= len(s.shards) {
			continue
		}
		groups[sh] = append(groups[sh], id-int64(sh)*shardStride)
	}
	var total int64
	for sh, locals := range groups {
		if len(locals) == 0 {
			continue
		}
		n, err := s.target(sh).DeleteRows(locals)
		total += n
		if err != nil {
			return total, err
		}
	}
	return total, nil
}

// Update rewrites every live row matching q with the assignments applied.
// When no assignment touches the split dimension the update delegates to
// each surviving shard (atomic per shard). An assignment that reassigns the
// split dimension can move rows between shards: those rows are collected by
// value, deleted by predicate in their old shard, and re-inserted routed by
// their new split value — a delete-then-insert sequence that is atomic per
// shard but not transactional across shards (a concurrent reader can
// observe the gap; a crash between the phases in the durable form can lose
// the re-insert). Returns the number of rows updated.
func (s *ShardedIndex) Update(q Query, set []Assignment) (int64, error) {
	dim := s.router.Dim()
	moves := false
	for _, a := range set {
		if a.Col == dim {
			moves = true
		}
	}
	first, last := s.prune(q)
	if !moves {
		var total int64
		for i := first; i <= last && i >= 0; i++ {
			n, err := s.target(i).Update(q, set)
			total += n
			if err != nil {
				return total, err
			}
		}
		return total, nil
	}
	// Three phases, so a row re-inserted into a later surviving shard can
	// never match the predicate a second time: collect every matching tuple
	// by value (tuples survive layout swaps, unlike physical ids), then
	// delete the predicate in every surviving shard, then apply the
	// assignments and re-route the rewritten rows.
	cols := len(s.names)
	var tuples [][]int64
	for i := first; i <= last && i >= 0; i++ {
		rows, _ := s.shards[i].Select(q)
		for rows.Next() {
			tp := make([]int64, cols)
			for c := range tp {
				tp[c] = rows.Int64(c)
			}
			tuples = append(tuples, tp)
		}
		rows.Close()
	}
	var total int64
	for i := first; i <= last && i >= 0; i++ {
		n, err := s.target(i).Delete(q)
		total += n
		if err != nil {
			return total, err
		}
	}
	for _, tp := range tuples {
		nr, err := applyAssignments(tp, set, cols)
		if err != nil {
			return total, err
		}
		if err := s.Insert(nr); err != nil {
			return total, err
		}
	}
	return total, nil
}

// target returns the mutation surface for shard i: the durable wrapper when
// one exists (so writes are WAL-acknowledged), else the adaptive facade
// directly. Both expose the same mutation signatures.
func (s *ShardedIndex) target(i int) interface {
	Inserter
	Deleter
	Updater
	DeleteRows(ids []int64) (int64, error)
} {
	if s.dur != nil {
		return s.dur[i]
	}
	return s.shards[i]
}

// Name implements Index.
func (s *ShardedIndex) Name() string { return "Flood+Sharded" }

// SizeBytes implements Index: the sum of the shards' index metadata.
func (s *ShardedIndex) SizeBytes() int64 {
	var total int64
	for _, a := range s.shards {
		total += a.SizeBytes()
	}
	return total
}

// NumRows returns the total row count across shards (including tombstoned
// rows not yet compacted).
func (s *ShardedIndex) NumRows() int {
	total := 0
	for _, a := range s.shards {
		total += a.NumRows()
	}
	return total
}

// LiveRows returns the number of rows queries can observe across shards.
func (s *ShardedIndex) LiveRows() int {
	total := 0
	for _, a := range s.shards {
		total += a.LiveRows()
	}
	return total
}

// Deleted returns the number of tombstoned (not yet compacted) rows across
// shards.
func (s *ShardedIndex) Deleted() int {
	total := 0
	for _, a := range s.shards {
		total += a.Deleted()
	}
	return total
}

// Epoch returns the sum of the shards' completed generation swaps — a
// strictly monotonic counter that advances exactly when some shard's layout
// changed, so epoch-keyed caches invalidate on any shard's relearn or merge
// and survive all others.
func (s *ShardedIndex) Epoch() int64 {
	var total int64
	for _, a := range s.shards {
		total += a.Epoch()
	}
	return total
}

// Schema returns the typed schema shared by every shard (nil when the store
// was built from a raw int64 table).
func (s *ShardedIndex) Schema() *Schema { return s.schema }

// NumShards returns the shard count.
func (s *ShardedIndex) NumShards() int { return len(s.shards) }

// SplitDim returns the split dimension (physical column index).
func (s *ShardedIndex) SplitDim() int { return s.router.Dim() }

// Splits returns the split points (len NumShards-1); callers must not
// modify the slice.
func (s *ShardedIndex) Splits() []int64 { return s.router.Splits() }

// Shard returns shard i's adaptive index, for per-shard stats, triggers,
// and tests. Mutations through it bypass the WAL in the durable form — use
// the ShardedIndex surface for writes.
func (s *ShardedIndex) Shard(i int) *AdaptiveIndex { return s.shards[i] }

// ShardStats returns one entry per shard in split order: key bounds, live
// and pending rows, epoch, and rebuild counters. The per-shard row counts
// are the skew diagnostic — balanced splits keep them within a small factor
// of each other.
func (s *ShardedIndex) ShardStats() []ShardStat {
	out := make([]ShardStat, len(s.shards))
	for i, a := range s.shards {
		st := a.Stats()
		lo, hi := s.router.Bounds(i)
		out[i] = ShardStat{
			Shard:    i,
			Lo:       lo,
			Hi:       hi,
			Rows:     a.LiveRows(),
			Pending:  st.PendingRows,
			Epoch:    a.Epoch(),
			Relearns: st.Relearns,
			Merges:   st.Merges,
			Queries:  st.Queries,
		}
	}
	return out
}

// Wait blocks until no shard has a background rebuild in flight.
func (s *ShardedIndex) Wait() {
	for _, a := range s.shards {
		a.Wait()
	}
}

// Close stops every shard's background work (and, in the durable form,
// syncs and closes each shard's WAL). Queries remain valid after Close;
// they just stop adapting.
func (s *ShardedIndex) Close() error {
	if s.dur != nil {
		var first error
		for _, d := range s.dur {
			if err := d.Close(); err != nil && first == nil {
				first = err
			}
		}
		return first
	}
	for _, a := range s.shards {
		a.Close()
	}
	return nil
}

var (
	_ Index            = (*ShardedIndex)(nil)
	_ query.BatchIndex = (*ShardedIndex)(nil)
	_ Deleter          = (*ShardedIndex)(nil)
	_ Inserter         = (*ShardedIndex)(nil)
	_ Updater          = (*ShardedIndex)(nil)
)
