package flood

import (
	"context"
	"fmt"
	"sync"
	"testing"

	"flood/internal/dataset"
	"flood/internal/workload"
)

// shardedBenchState is the shared 1M-row sales fixture for the sharded
// benchmarks, built once per test binary. The cost model is calibrated once
// and shared by every build below, so the Build benchmarks time partition +
// per-shard layout search + construction, not calibration.
var shardedBenchState struct {
	once    sync.Once
	ds      *dataset.Dataset
	queries []Query
	bopts   *Options
	flat    *Flood
	idx     *ShardedIndex // 4 shards, the serving configuration
	pruned  Query         // contained in shard 0's key range
	fanout  Query         // unbounded on the split dim: every shard survives
}

func shardedBenchSetup(b *testing.B) {
	b.Helper()
	s := &shardedBenchState
	s.once.Do(func() {
		const n = 1_000_000
		s.ds = dataset.Sales(n, 1301)
		s.queries = workload.Standard(s.ds, 40, 1302)
		s.bopts = &Options{CalibrationLayouts: 3, GDSteps: 5, Seed: 1303}
		m, err := Calibrate(s.ds.Table, s.queries, s.bopts)
		if err != nil {
			panic(err)
		}
		s.bopts.CostModel = m
		s.flat, err = Build(s.ds.Table, s.queries, s.bopts)
		if err != nil {
			panic(err)
		}
		s.idx, err = NewSharded(s.ds.Table, s.queries, &ShardedOptions{
			Shards:   4,
			Build:    s.bopts,
			Adaptive: &AdaptiveConfig{DriftFactor: 1e9, MergeFraction: -1},
		})
		if err != nil {
			panic(err)
		}
		nd := s.ds.Table.NumCols()
		dim := s.idx.SplitDim()
		splits := s.idx.Splits()
		if len(splits) == 0 {
			panic("sharded bench fixture collapsed to one shard")
		}
		// pruned is a narrow window strictly below the first split point, so
		// the router prunes every shard but shard 0 and the query takes the
		// single-shard delegation path; the same predicate runs on the flat
		// index for the latency-parity comparison.
		lo := splits[0] / 4
		s.pruned = NewQuery(nd).WithRange(dim, lo, lo+(splits[0]-1)/8)
		// fanout leaves the split dimension unbounded and filters elsewhere,
		// so all four shards survive pruning and merge partial aggregates.
		s.fanout = NewQuery(nd).WithRange(s.ds.ColumnIndex("quantity"), 1, 3)
	})
}

// BenchmarkShardedBuild1M measures partitioned construction of the 1M-row
// sales table at increasing shard counts, sharing one pre-calibrated cost
// model. Per-shard builds run in parallel goroutines, so on a multi-core
// machine shards4/shards8 should beat shards1 near-linearly in cores; on a
// single-core runner the contract is parity (the partition + gather overhead
// stays in the noise). Recorded in BENCH_scan.json by `make bench`.
func BenchmarkShardedBuild1M(b *testing.B) {
	shardedBenchSetup(b)
	s := &shardedBenchState
	for _, k := range []int{1, 4, 8} {
		b.Run(fmt.Sprintf("shards%d", k), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				idx, err := NewSharded(s.ds.Table, s.queries, &ShardedOptions{
					Shards: k,
					Build:  s.bopts,
				})
				if err != nil {
					b.Fatal(err)
				}
				if idx.NumRows() != s.ds.Table.NumRows() {
					b.Fatalf("shards hold %d rows, want %d", idx.NumRows(), s.ds.Table.NumRows())
				}
				idx.Close()
			}
		})
	}
}

// BenchmarkShardedExecute1M measures aggregate execution against the 4-shard
// 1M-row index. The pruned/flat pair is the routing-overhead contract: a
// query contained in one shard's key range must track the flat engine on the
// same predicate within ~10% and allocate nothing. fanout runs the
// every-shard-survives shape, where partial counts merge across shards.
func BenchmarkShardedExecute1M(b *testing.B) {
	shardedBenchSetup(b)
	s := &shardedBenchState
	run := func(name string, exec func(q Query, agg Aggregator) Stats, q Query) {
		b.Run(name, func(b *testing.B) {
			cnt := NewCount()
			// Warm scratch buffers and fill the adaptive workload reservoirs
			// (512 slots), past which sampling recycles Range storage in
			// place — the steady state the allocs/op column reports.
			for i := 0; i < 520; i++ {
				exec(q, cnt)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				cnt.Reset()
				exec(q, cnt)
			}
			b.StopTimer()
			if cnt.Result() == 0 {
				b.Fatal("benchmark query matched nothing")
			}
		})
	}
	run("flat", s.flat.Execute, s.pruned)
	run("pruned", s.idx.Execute, s.pruned)
	run("fanout", s.idx.Execute, s.fanout)
}

// BenchmarkShardedLimit10 proves the LIMIT budget is shared across the
// fan-out: a LIMIT 10 select whose predicate survives on every shard stops
// after ten matches total, so scanned/op stays a vanishing fraction of the
// 1M-row table instead of ~10 rows per shard times four shards of scanning.
// Recorded in BENCH_scan.json by `make bench`.
func BenchmarkShardedLimit10(b *testing.B) {
	shardedBenchSetup(b)
	s := &shardedBenchState
	opts := &QueryOptions{Limit: 10}
	ctx := context.Background()
	var rowsOut, scanned int64
	var sink int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows, st, err := s.idx.SelectContext(ctx, s.fanout, opts, "order_id")
		if err != nil {
			b.Fatal(err)
		}
		for rows.Next() {
			sink += rows.Int64(0)
		}
		rowsOut += int64(rows.Len())
		scanned += st.Scanned
		rows.Close()
	}
	b.StopTimer()
	if rowsOut != int64(b.N)*10 {
		b.Fatalf("limited select returned %d rows over %d ops, want 10 each", rowsOut, b.N)
	}
	b.ReportMetric(float64(rowsOut)/float64(b.N), "rows/op")
	b.ReportMetric(float64(scanned)/float64(b.N), "scanned/op")
	_ = sink
}
