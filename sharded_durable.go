package flood

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"flood/internal/shard"
)

// ShardedRecoveryReport describes what OpenShardedDurable reconstructed:
// one RecoveryReport per shard plus the totals a caller usually wants.
type ShardedRecoveryReport struct {
	// Shards holds each shard's recovery report, in shard order.
	Shards []RecoveryReport
	// SnapshotRows and ReplayedRows are the per-shard sums.
	SnapshotRows int
	ReplayedRows int
	// TruncatedTail reports that at least one shard's newest WAL segment was
	// cut back to its last valid record.
	TruncatedTail bool
}

// shardDirName names shard i's subdirectory under a sharded store's root.
func shardDirName(i int) string { return fmt.Sprintf("shard-%04d", i) }

// CreateShardedDurable initializes dir as a crash-safe sharded store: the
// table is partitioned and built exactly as NewSharded does, each shard gets
// its own durable subdirectory (snapshot plus WAL, see CreateDurable), and a
// checksummed manifest written last records the split dimension, split
// points, and shard directories. The manifest is the store's commit point —
// recovery refuses a root without one, so a crash mid-create leaves a
// directory that fails to open rather than a store missing shards.
func CreateShardedDurable(dir string, tbl *Table, train []Query, opts *ShardedOptions, dopts *DurableOptions) (*ShardedIndex, error) {
	o := opts.withDefaults()
	dim := o.Dim
	if dim < 0 {
		dim = shard.ChooseDim(train, tbl.NumCols())
	}
	if dim >= tbl.NumCols() {
		return nil, fmt.Errorf("flood: sharded split dimension %d out of range (table has %d columns)", dim, tbl.NumCols())
	}
	splits := o.Splits
	if splits == nil {
		splits = shard.FitSplits(tbl.Raw(dim), o.Shards)
	}
	r, err := shard.NewRouter(dim, splits)
	if err != nil {
		return nil, err
	}
	floods, err := buildShards(tbl, train, r, o.Build)
	if err != nil {
		return nil, err
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	do := dopts.orDefault()
	if do.Adaptive == nil {
		do.Adaptive = o.Adaptive
	}
	s := &ShardedIndex{
		router: r,
		shards: make([]*AdaptiveIndex, len(floods)),
		schema: floods[0].schema,
		names:  floods[0].Table().Names(),
		dur:    make([]*DurableIndex, len(floods)),
		root:   dir,
	}
	m := &shard.Manifest{Dim: dim, Splits: r.Splits(), ShardDirs: make([]string, len(floods))}
	for i, f := range floods {
		m.ShardDirs[i] = shardDirName(i)
		d, err := CreateDurable(filepath.Join(dir, m.ShardDirs[i]), f, &do)
		if err != nil {
			s.closePartial(i)
			return nil, fmt.Errorf("flood: creating durable shard %d: %w", i, err)
		}
		s.dur[i] = d
		s.shards[i] = d.Adaptive()
	}
	if err := shard.WriteManifest(dir, m); err != nil {
		s.closePartial(len(floods))
		return nil, fmt.Errorf("flood: writing shard manifest: %w", err)
	}
	return s, nil
}

// closePartial tears down the first n shards of a create that failed midway.
func (s *ShardedIndex) closePartial(n int) {
	for i := 0; i < n; i++ {
		s.dur[i].Close()
	}
}

// OpenShardedDurable reopens a sharded store: the manifest is read and
// validated first, then every shard's durable directory recovers
// independently and in parallel — snapshot restore plus WAL-tail replay per
// shard (see OpenDurable), so recovery time scales with the largest shard,
// not the table. Acknowledged writes recover into the shard that owns them.
func OpenShardedDurable(dir string, dopts *DurableOptions) (*ShardedIndex, ShardedRecoveryReport, error) {
	var rep ShardedRecoveryReport
	m, err := shard.ReadManifest(dir)
	if err != nil {
		return nil, rep, err
	}
	r, err := m.Router()
	if err != nil {
		return nil, rep, err
	}
	n := m.NumShards()
	durs := make([]*DurableIndex, n)
	reps := make([]RecoveryReport, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			durs[i], reps[i], errs[i] = OpenDurable(filepath.Join(dir, m.ShardDirs[i]), dopts)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			for j, d := range durs {
				if d != nil {
					durs[j].Close()
				}
			}
			return nil, rep, fmt.Errorf("flood: recovering shard %d: %w", i, err)
		}
	}
	rep.Shards = reps
	for _, sr := range reps {
		rep.SnapshotRows += sr.SnapshotRows
		rep.ReplayedRows += sr.ReplayedRows
		rep.TruncatedTail = rep.TruncatedTail || sr.TruncatedTail
	}
	s := &ShardedIndex{
		router: r,
		shards: make([]*AdaptiveIndex, n),
		dur:    durs,
		root:   dir,
	}
	for i, d := range durs {
		s.shards[i] = d.Adaptive()
	}
	s.schema = s.shards[0].epoch.Load().flood.schema
	s.names = s.shards[0].epoch.Load().flood.Table().Names()
	return s, rep, nil
}

// Checkpoint absorbs every shard's WAL into its snapshot (see
// DurableIndex.Checkpoint), running the shards in parallel; the manifest is
// immutable after create, so a sharded checkpoint is exactly the set of
// per-shard checkpoints. All shards are attempted even when one fails; the
// first error is returned. No-op (nil) on an in-memory ShardedIndex.
func (s *ShardedIndex) Checkpoint() error {
	if s.dur == nil {
		return nil
	}
	s.ckptMu.Lock()
	defer s.ckptMu.Unlock()
	errs := make([]error, len(s.dur))
	var wg sync.WaitGroup
	for i, d := range s.dur {
		wg.Add(1)
		go func(i int, d *DurableIndex) {
			defer wg.Done()
			errs[i] = d.Checkpoint()
		}(i, d)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return fmt.Errorf("flood: checkpointing shard %d: %w", i, err)
		}
	}
	return nil
}

// Durable returns shard i's durable wrapper (nil when the index is
// in-memory), for checkpoint fault injection and per-shard inspection.
func (s *ShardedIndex) Durable(i int) *DurableIndex {
	if s.dur == nil {
		return nil
	}
	return s.dur[i]
}

// Root returns the store's root directory ("" when in-memory).
func (s *ShardedIndex) Root() string { return s.root }
