package flood

import (
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"flood/internal/dataset"
	"flood/internal/shard"
	"flood/internal/workload"
)

func createShardedStore(t *testing.T, dir string) (*ShardedIndex, *dataset.Dataset, []Query) {
	t.Helper()
	ds := dataset.Sales(4000, 501)
	queries := workload.Standard(ds, 20, 502)
	s, err := CreateShardedDurable(dir, ds.Table, queries, &ShardedOptions{
		Shards:   4,
		Build:    &Options{CalibrationLayouts: 3, GDSteps: 5, Seed: 503},
		Adaptive: &AdaptiveConfig{DriftFactor: 1e9, MergeFraction: -1},
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	return s, ds, queries
}

// TestShardedDurableRecovery is the sharded durability round trip: create a
// store, insert across shards without checkpointing, close, reopen through
// the manifest, and check every acknowledged write recovered into the shard
// that owns it (WAL-tail replay per shard).
func TestShardedDurableRecovery(t *testing.T) {
	dir := t.TempDir()
	s, ds, _ := createShardedStore(t, dir)
	dim := s.SplitDim()
	splits := append([]int64(nil), s.Splits()...)
	nd := ds.Table.NumCols()
	markerCol := ds.ColumnIndex("quantity")
	if markerCol == dim {
		markerCol = ds.ColumnIndex("date")
	}
	rng := rand.New(rand.NewSource(504))
	const added = 60
	for i := 0; i < added; i++ {
		row := markerRow(ds, rng, markerCol, i)
		// Spread inserts across the full key range, boundaries included.
		if len(splits) > 0 && i < len(splits) {
			row[dim] = splits[i]
		}
		if err := s.Insert(row); err != nil {
			t.Fatal(err)
		}
	}
	marker := NewQuery(nd).WithRange(markerCol, 5000, 6000)
	if got := countOf(t, s, marker); got != added {
		t.Fatalf("marker count %d before close, want %d", got, added)
	}
	total := countOf(t, s, NewQuery(nd))
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	r, rep, err := OpenShardedDurable(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if len(rep.Shards) != s.NumShards() {
		t.Fatalf("recovery reported %d shards, want %d", len(rep.Shards), s.NumShards())
	}
	if rep.ReplayedRows != added {
		t.Fatalf("recovery replayed %d rows, want %d", rep.ReplayedRows, added)
	}
	if got := countOf(t, r, marker); got != added {
		t.Fatalf("marker count %d after recovery, want %d", got, added)
	}
	if got := countOf(t, r, NewQuery(nd)); got != total {
		t.Fatalf("total count %d after recovery, want %d", got, total)
	}
	if r.SplitDim() != dim {
		t.Fatalf("recovered split dim %d, want %d", r.SplitDim(), dim)
	}
	for i, sp := range r.Splits() {
		if sp != splits[i] {
			t.Fatalf("recovered split %d = %d, want %d", i, sp, splits[i])
		}
	}
}

// TestShardedDurableCheckpoint checks that a checkpoint absorbs every
// shard's WAL into its snapshot: a reopen replays nothing and still sees
// every row, and mutations (deletes) survive through the snapshot.
func TestShardedDurableCheckpoint(t *testing.T) {
	dir := t.TempDir()
	s, ds, _ := createShardedStore(t, dir)
	nd := ds.Table.NumCols()
	dateCol := ds.ColumnIndex("date")
	slice := NewQuery(nd).WithRange(dateCol, 0, 20)
	deleted, err := s.Delete(slice)
	if err != nil {
		t.Fatal(err)
	}
	if deleted == 0 {
		t.Fatal("delete slice matched nothing")
	}
	rng := rand.New(rand.NewSource(505))
	markerCol := ds.ColumnIndex("quantity")
	if markerCol == s.SplitDim() {
		markerCol = dateCol
	}
	for i := 0; i < 25; i++ {
		if err := s.Insert(markerRow(ds, rng, markerCol, i)); err != nil {
			t.Fatal(err)
		}
	}
	want := countOf(t, s, NewQuery(nd))
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	r, rep, err := OpenShardedDurable(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if rep.ReplayedRows != 0 {
		t.Fatalf("post-checkpoint recovery replayed %d rows, want 0", rep.ReplayedRows)
	}
	if got := countOf(t, r, NewQuery(nd)); got != want {
		t.Fatalf("total count %d after checkpointed recovery, want %d", got, want)
	}
	if got := countOf(t, r, slice); got != 0 {
		t.Fatalf("%d deleted rows resurrected by recovery", got)
	}
}

// TestShardedManifestGatekeeps pins the commit-point property: a root whose
// manifest is missing or corrupt refuses to open, even though every shard
// directory underneath is intact.
func TestShardedManifestGatekeeps(t *testing.T) {
	dir := t.TempDir()
	s, _, _ := createShardedStore(t, dir)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, shard.ManifestName)
	orig, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	// Corrupt one byte in the middle of the payload.
	bad := append([]byte(nil), orig...)
	bad[len(bad)/2] ^= 0x20
	if err := os.WriteFile(path, bad, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := OpenShardedDurable(dir, nil); err == nil {
		t.Fatal("corrupt manifest opened")
	}

	// Remove it entirely — the crash-mid-create shape.
	if err := os.Remove(path); err != nil {
		t.Fatal(err)
	}
	if _, _, err := OpenShardedDurable(dir, nil); err == nil {
		t.Fatal("manifest-less root opened")
	}

	// Restore and the store opens again.
	if err := os.WriteFile(path, orig, 0o644); err != nil {
		t.Fatal(err)
	}
	r, _, err := OpenShardedDurable(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	r.Close()
}

// TestShardedDurableWriteRouting checks the durable mutation surface routes
// through each shard's WAL: an insert acknowledged by the sharded facade is
// recoverable from the owning shard's directory alone.
func TestShardedDurableWriteRouting(t *testing.T) {
	dir := t.TempDir()
	s, ds, _ := createShardedStore(t, dir)
	splits := s.Splits()
	if len(splits) == 0 {
		t.Skip("column collapsed to one shard")
	}
	dim := s.SplitDim()
	markerCol := ds.ColumnIndex("quantity")
	if markerCol == dim {
		markerCol = ds.ColumnIndex("date")
	}
	row := markerRow(ds, rand.New(rand.NewSource(506)), markerCol, 0)
	row[dim] = splits[0] // boundary value: owned by shard 1
	if err := s.Insert(row); err != nil {
		t.Fatal(err)
	}
	owner := s.router.Shard(splits[0])
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	d, rep, err := OpenDurable(filepath.Join(dir, shardDirName(owner)), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	if rep.ReplayedRows != 1 {
		t.Fatalf("owning shard replayed %d rows, want the 1 routed insert", rep.ReplayedRows)
	}
}
