package flood

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"flood/internal/dataset"
	"flood/internal/workload"
)

// shardedUnderTest builds a sharded stack next to a flat reference index
// over the same data, with cheap build options and the drift monitor
// quiesced so nothing rebuilds behind the test's back.
func shardedUnderTest(t *testing.T, shards int) (*ShardedIndex, *Flood, *dataset.Dataset, []Query) {
	t.Helper()
	ds := dataset.Sales(8000, 401)
	queries := workload.Standard(ds, 30, 402)
	bopts := &Options{CalibrationLayouts: 3, GDSteps: 5, Seed: 403}
	flat, err := Build(ds.Table, queries, bopts)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewSharded(ds.Table, queries, &ShardedOptions{
		Shards:   shards,
		Dim:      -1,
		Build:    bopts,
		Adaptive: &AdaptiveConfig{DriftFactor: 1e9, MergeFraction: -1},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s, flat, ds, queries
}

// TestShardedFanoutEquivalence pins the core fan-out property: every
// workload query returns exactly what the flat engine returns, whether it
// prunes to one shard or fans across several, for counts and column sums.
func TestShardedFanoutEquivalence(t *testing.T) {
	s, flat, ds, queries := shardedUnderTest(t, 4)
	if s.NumShards() < 2 {
		t.Fatalf("expected multiple shards, got %d", s.NumShards())
	}
	if s.NumRows() != ds.Table.NumRows() {
		t.Fatalf("shards hold %d rows, table has %d", s.NumRows(), ds.Table.NumRows())
	}
	broad := NewQuery(ds.Table.NumCols()) // unbounded: every shard survives
	for i, q := range append(queries, broad) {
		want := countOf(t, flat, q)
		if got := countOf(t, s, q); got != want {
			t.Errorf("query %d: sharded count %d, flat %d", i, got, want)
		}
		wa, ga := NewSum(3), NewSum(3) // sum(quantity)
		flat.Execute(q, wa)
		s.Execute(q, ga)
		if ga.Result() != wa.Result() {
			t.Errorf("query %d: sharded sum %d, flat %d", i, ga.Result(), wa.Result())
		}
	}
}

// TestShardedFanoutPruning checks that a query contained in one shard's key
// range runs only that shard: the other shards' query counters stay flat.
func TestShardedFanoutPruning(t *testing.T) {
	s, _, ds, _ := shardedUnderTest(t, 4)
	splits := s.Splits()
	if len(splits) == 0 {
		t.Skip("column collapsed to one shard")
	}
	// A query strictly inside shard 0 on the split dimension.
	q := NewQuery(ds.Table.NumCols()).WithRange(s.SplitDim(), NegInf, splits[0]-1)
	before := s.ShardStats()
	s.Execute(q, NewCount())
	after := s.ShardStats()
	if got := after[0].Queries - before[0].Queries; got != 1 {
		t.Errorf("target shard served %d queries, want 1", got)
	}
	for i := 1; i < len(after); i++ {
		if after[i].Queries != before[i].Queries {
			t.Errorf("pruned shard %d served a query", i)
		}
	}
}

// TestShardedShardStats checks the skew diagnostic: per-shard row counts
// cover the table exactly and no shard is wildly imbalanced on the fitted
// splits.
func TestShardedShardStats(t *testing.T) {
	s, _, ds, _ := shardedUnderTest(t, 4)
	stats := s.ShardStats()
	total := 0
	for _, st := range stats {
		total += st.Rows
	}
	if total != ds.Table.NumRows() {
		t.Fatalf("shard rows sum to %d, table has %d", total, ds.Table.NumRows())
	}
	even := float64(ds.Table.NumRows()) / float64(len(stats))
	for _, st := range stats {
		if float64(st.Rows) > 3*even {
			t.Errorf("shard %d holds %d rows, even share is %.0f — splits badly imbalanced", st.Shard, st.Rows, even)
		}
	}
}

// TestShardedSelectStrides checks the id contract of the sharded Select:
// collected ids decode to the right tuples, ids carry their owning shard in
// the high bits, and DeleteRows accepts them round-trip.
func TestShardedSelectStrides(t *testing.T) {
	s, flat, ds, _ := shardedUnderTest(t, 4)
	q := NewQuery(ds.Table.NumCols()).WithRange(5, 100, 400) // date slice spanning shards
	want := countOf(t, flat, q)

	rows, st := s.Select(q, "order_id", "date")
	if int64(rows.Len()) != want || st.Matched != want {
		t.Fatalf("Select matched %d rows (stats %d), flat says %d", rows.Len(), st.Matched, want)
	}
	dim := s.SplitDim()
	seenShards := map[int]bool{}
	ids := make([]int64, 0, rows.Len())
	for rows.Next() {
		if d := rows.Int64(1); d < 100 || d > 400 {
			t.Fatalf("selected row has date %d outside [100, 400]", d)
		}
		id := rows.RowID()
		sh := int(id >> shardStrideBits)
		seenShards[sh] = true
		// The id's high bits must agree with routing the row's split value.
		if got := s.router.Shard(rows.Int64(0)); dim == 0 && got != sh {
			t.Fatalf("id %d claims shard %d, split value routes to %d", id, sh, got)
		}
		ids = append(ids, id)
	}
	rows.Close()
	if len(seenShards) < 2 {
		t.Fatalf("date slice touched %d shard(s); expected a cross-shard result", len(seenShards))
	}

	// Deleting by the collected ids must remove exactly those rows.
	n, err := s.DeleteRows(ids)
	if err != nil {
		t.Fatal(err)
	}
	if n != want {
		t.Fatalf("DeleteRows removed %d rows, want %d", n, want)
	}
	if got := countOf(t, s, q); got != 0 {
		t.Fatalf("%d rows still match after deleting the full result", got)
	}
}

// TestShardedFanoutLimit checks the shared LIMIT budget: `LIMIT n` over a
// query fanned across every shard delivers exactly n rows and stops
// scanning long before the full result.
func TestShardedFanoutLimit(t *testing.T) {
	s, flat, ds, _ := shardedUnderTest(t, 4)
	q := NewQuery(ds.Table.NumCols()) // matches all 8000 rows across all shards
	full := countOf(t, flat, q)

	rows, st, err := s.SelectContext(context.Background(), q, &QueryOptions{Limit: 10})
	defer rows.Close()
	if err != nil {
		t.Fatal(err)
	}
	if rows.Len() != 10 {
		t.Fatalf("LIMIT 10 delivered %d rows", rows.Len())
	}
	if st.Matched > 10 {
		t.Fatalf("limit delivered %d matches past the budget", st.Matched)
	}
	if st.Scanned >= full {
		t.Fatalf("LIMIT 10 scanned all %d rows; the budget did not stop the fan-out", st.Scanned)
	}
}

// TestShardedExecuteOrEquivalence runs disjunctions through the sharded
// engine and compares with the flat engine, for counts and for the SelectOr
// row set (decoded values, not ids — the id spaces differ by design).
func TestShardedExecuteOrEquivalence(t *testing.T) {
	s, flat, ds, _ := shardedUnderTest(t, 4)
	nd := ds.Table.NumCols()
	ors := [][]Query{
		{NewQuery(nd).WithRange(5, 0, 50), NewQuery(nd).WithRange(5, 700, 1100)},
		{NewQuery(nd).WithRange(0, 0, 2000), NewQuery(nd).WithRange(0, 1500, 9000)}, // overlapping, split dim
		{NewQuery(nd).WithRange(1, 0, 3), NewQuery(nd).WithRange(5, 100, 200)},
	}
	for i, queries := range ors {
		wa, ga := NewCount(), NewCount()
		ExecuteOr(flat, queries, wa)
		s.ExecuteOr(queries, ga)
		if ga.Result() != wa.Result() {
			t.Errorf("or %d: sharded count %d, flat %d", i, ga.Result(), wa.Result())
		}
	}

	// Row-level check through the schema-less value route: each collected id
	// decodes to a tuple matching at least one disjunct, no duplicates.
	queries := ors[1]
	ra, _ := selectOrSharded(s, queries)
	defer ra.Close()
	seen := map[int64]bool{}
	for ra.Next() {
		id := ra.RowID()
		if seen[id] {
			t.Fatalf("id %d delivered twice from the OR", id)
		}
		seen[id] = true
		v := ra.Int64(0)
		if !(v >= 0 && v <= 9000) {
			t.Fatalf("or row has order_id %d outside both disjuncts", v)
		}
	}
	wa := NewCount()
	ExecuteOr(flat, queries, wa)
	if int64(len(seen)) != wa.Result() {
		t.Fatalf("or select delivered %d rows, flat count is %d", len(seen), wa.Result())
	}
}

// selectOrSharded drives the sharded OR select the way Schema.SelectOr
// would: rows collected shard-outer into a striped id space.
func selectOrSharded(s *ShardedIndex, queries []Query) (*Rows, Stats) {
	r := getRows(s.schema, s.resolver(), nil)
	st := s.executeOrShards(nil, queries, &r.rc, 0)
	r.finalize()
	return r, st
}

// TestShardedBatchEquivalence checks the batched paths (plain and context)
// against per-query execution.
func TestShardedBatchEquivalence(t *testing.T) {
	s, flat, _, queries := shardedUnderTest(t, 4)
	batch := queries[:8]
	aggs := make([]Aggregator, len(batch))
	for i := range aggs {
		aggs[i] = NewCount()
	}
	s.ExecuteBatch(batch, aggs)
	for i, q := range batch {
		if want := countOf(t, flat, q); aggs[i].Result() != want {
			t.Errorf("batch query %d: count %d, flat %d", i, aggs[i].Result(), want)
		}
	}
	for i := range aggs {
		aggs[i] = NewCount()
	}
	if _, err := s.ExecuteBatchContext(context.Background(), batch, aggs); err != nil {
		t.Fatal(err)
	}
	for i, q := range batch {
		if want := countOf(t, flat, q); aggs[i].Result() != want {
			t.Errorf("batch-context query %d: count %d, flat %d", i, aggs[i].Result(), want)
		}
	}
}

// TestShardedInsertRouting inserts rows on both sides of a split boundary
// and at the boundary value itself, then checks each landed in the shard
// the router names and that queries see all of them.
func TestShardedInsertRouting(t *testing.T) {
	s, _, ds, _ := shardedUnderTest(t, 4)
	splits := s.Splits()
	if len(splits) == 0 {
		t.Skip("column collapsed to one shard")
	}
	dim := s.SplitDim()
	boundary := splits[0]
	probes := []int64{boundary - 1, boundary, boundary + 1}
	rng := rand.New(rand.NewSource(404))
	base := make([]int, s.NumShards())
	for i, st := range s.ShardStats() {
		base[i] = st.Rows
	}
	// Stamp a marker on a small-domain column that is not the split
	// dimension, so routing by the probe value never clobbers it.
	markerCol := ds.ColumnIndex("quantity")
	if markerCol == dim {
		markerCol = ds.ColumnIndex("date")
	}
	for _, v := range probes {
		row := markerRow(ds, rng, markerCol, 0)
		row[dim] = v
		if err := s.Insert(row); err != nil {
			t.Fatal(err)
		}
	}
	marker := NewQuery(ds.Table.NumCols()).WithRange(markerCol, 5000, 6000)
	if got := countOf(t, s, marker); got != int64(len(probes)) {
		t.Fatalf("marker query found %d inserted rows, want %d", got, len(probes))
	}
	for _, v := range probes {
		sh := s.router.Shard(v)
		got := s.Shard(sh).LiveRows() - base[sh]
		if got < 1 {
			t.Errorf("value %d routed to shard %d but its row count did not grow", v, sh)
		}
	}
	// Boundary semantics: the split point itself belongs to the upper shard.
	if s.router.Shard(boundary) != s.router.Shard(boundary+1) {
		t.Error("split value and its successor landed in different shards")
	}
	if s.router.Shard(boundary-1) == s.router.Shard(boundary) {
		t.Error("split value did not open a new shard")
	}
}

// TestShardedDeleteUpdate exercises predicate deletes across shards and the
// two update flavors: in-place (split dimension untouched) and cross-shard
// (the assignment moves rows to another shard).
func TestShardedDeleteUpdate(t *testing.T) {
	s, _, ds, _ := shardedUnderTest(t, 4)
	nd := ds.Table.NumCols()
	dateCol := ds.ColumnIndex("date")
	dim := s.SplitDim()

	// Cross-shard predicate delete.
	slice := NewQuery(nd).WithRange(dateCol, 0, 30)
	want := countOf(t, s, slice)
	if want == 0 {
		t.Fatal("test slice matched nothing")
	}
	n, err := s.Delete(slice)
	if err != nil {
		t.Fatal(err)
	}
	if n != want || countOf(t, s, slice) != 0 {
		t.Fatalf("deleted %d of %d; %d remain", n, want, countOf(t, s, slice))
	}

	// In-place update: quantity is not the split dimension.
	qtyCol := ds.ColumnIndex("quantity")
	if qtyCol == dim {
		t.Fatalf("unexpected split dimension %d", dim)
	}
	slice2 := NewQuery(nd).WithRange(dateCol, 40, 60)
	cnt := countOf(t, s, slice2)
	upd, err := s.Update(slice2, []Assignment{{Col: qtyCol, Value: 777}})
	if err != nil {
		t.Fatal(err)
	}
	if upd != cnt {
		t.Fatalf("updated %d rows, want %d", upd, cnt)
	}
	check := NewQuery(nd).WithRange(dateCol, 40, 60).WithRange(qtyCol, 777, 777)
	if got := countOf(t, s, check); got != cnt {
		t.Fatalf("%d rows carry the updated quantity, want %d", got, cnt)
	}

	// Cross-shard move: reassign the split dimension into the last shard's
	// range; the rows must leave their old shards and be queryable at the
	// new value.
	splits := s.Splits()
	if len(splits) == 0 {
		t.Skip("column collapsed to one shard")
	}
	target := splits[len(splits)-1] + 100_000
	slice3 := NewQuery(nd).WithRange(dateCol, 70, 90)
	cnt3 := countOf(t, s, slice3)
	if cnt3 == 0 {
		t.Fatal("move slice matched nothing")
	}
	moved, err := s.Update(slice3, []Assignment{{Col: dim, Value: target}})
	if err != nil {
		t.Fatal(err)
	}
	if moved != cnt3 {
		t.Fatalf("moved %d rows, want %d", moved, cnt3)
	}
	at := NewQuery(nd).WithRange(dateCol, 70, 90).WithRange(dim, target, target)
	if got := countOf(t, s, at); got != cnt3 {
		t.Fatalf("%d rows live at the new split value, want %d", got, cnt3)
	}
	// And they must physically live in the owning shard.
	lastShard := s.router.Shard(target)
	if got := countOf(t, s.Shard(lastShard), at); got != cnt3 {
		t.Fatalf("owning shard sees %d moved rows, want %d", got, cnt3)
	}
	if s.LiveRows() != ds.Table.NumRows()-int(want) {
		t.Fatalf("live rows %d after delete+updates, want %d", s.LiveRows(), ds.Table.NumRows()-int(want))
	}
}

// TestShardedRelearnIsolation is the shard-local maintenance acceptance
// test: a forced relearn in one shard swaps only that shard's epoch while
// concurrent readers hammer every shard (run under -race). Every other
// shard's epoch — and the data everywhere — stays untouched.
func TestShardedRelearnIsolation(t *testing.T) {
	s, flat, ds, queries := shardedUnderTest(t, 4)
	if s.NumShards() < 2 {
		t.Skip("need multiple shards")
	}
	before := make([]int64, s.NumShards())
	for i := range before {
		before[i] = s.Shard(i).Epoch()
	}
	broad := NewQuery(ds.Table.NumCols())
	want := countOf(t, flat, broad)
	// Prime every shard's workload reservoir so the forced relearn has a
	// training sample to work from.
	if got := countOf(t, s, broad); got != want {
		t.Fatalf("broad count %d before relearn, want %d", got, want)
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				q := queries[(i+w)%len(queries)]
				s.Execute(q, NewCount())
				if got := countOf(t, s, broad); got != want {
					t.Errorf("broad count %d during relearn, want %d", got, want)
					return
				}
			}
		}(w)
	}

	target := s.Shard(1)
	if !target.TriggerRelearn() {
		t.Fatal("forced relearn did not start")
	}
	target.Wait()
	close(stop)
	wg.Wait()

	for i := 0; i < s.NumShards(); i++ {
		got := s.Shard(i).Epoch()
		if i == 1 {
			if got != before[i]+1 {
				t.Errorf("relearned shard epoch went %d -> %d, want +1", before[i], got)
			}
			continue
		}
		if got != before[i] {
			t.Errorf("shard %d epoch moved %d -> %d during shard 1's relearn", i, before[i], got)
		}
	}
	if st := target.Stats(); st.Relearns != 1 || st.LastError != nil {
		t.Fatalf("target shard relearns = %d, err = %v", st.Relearns, st.LastError)
	}
	if got := countOf(t, s, broad); got != want {
		t.Fatalf("broad count %d after relearn, want %d", got, want)
	}
}

// TestShardedSingleShardAllocs pins the no-merge fast path: an aggregate
// query contained in one shard must not allocate — same bar as the flat
// engine's steady-state Execute.
func TestShardedSingleShardAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates inside Execute")
	}
	s, _, ds, _ := shardedUnderTest(t, 4)
	splits := s.Splits()
	if len(splits) == 0 {
		t.Skip("column collapsed to one shard")
	}
	q := NewQuery(ds.Table.NumCols()).WithRange(s.SplitDim(), NegInf, splits[0]-1)
	agg := NewCount()
	// Fill the target shard's workload reservoir first: sampling allocates
	// while the reservoir grows, and recycles Range storage once full.
	for i := 0; i < 520; i++ {
		agg.Reset()
		s.Execute(q, agg)
	}
	if avg := testing.AllocsPerRun(100, func() {
		agg.Reset()
		s.Execute(q, agg)
	}); avg != 0 {
		t.Fatalf("single-shard Execute allocates %.1f times per run, want 0", avg)
	}
}

// TestShardedExplicitSplits covers explicit split points, including ones
// that leave a shard empty: building, querying, and inserting into the
// empty shard must all work.
func TestShardedExplicitSplits(t *testing.T) {
	ds := dataset.Sales(3000, 405)
	queries := workload.Standard(ds, 20, 406)
	// order_id spans [0, ~9000); 1<<40 opens a shard holding nothing.
	s, err := NewSharded(ds.Table, queries, &ShardedOptions{
		Dim:    0,
		Splits: []int64{3000, 1 << 40},
		Build:  &Options{CalibrationLayouts: 3, GDSteps: 5, Seed: 407},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if s.NumShards() != 3 {
		t.Fatalf("NumShards = %d, want 3", s.NumShards())
	}
	if rows := s.ShardStats()[2].Rows; rows != 0 {
		t.Fatalf("top shard holds %d rows, want 0", rows)
	}
	broad := NewQuery(ds.Table.NumCols())
	if got := countOf(t, s, broad); got != int64(ds.Table.NumRows()) {
		t.Fatalf("broad count %d, want %d", got, ds.Table.NumRows())
	}
	row := make([]int64, ds.Table.NumCols())
	row[0] = 1 << 41 // routes to the empty top shard
	if err := s.Insert(row); err != nil {
		t.Fatal(err)
	}
	if got := s.Shard(2).LiveRows(); got != 1 {
		t.Fatalf("empty shard has %d rows after insert, want 1", got)
	}
	if got := countOf(t, s, broad); got != int64(ds.Table.NumRows())+1 {
		t.Fatalf("broad count %d after insert, want %d", got, ds.Table.NumRows()+1)
	}
}

func TestShardedRejectsBadOptions(t *testing.T) {
	ds := dataset.Sales(500, 408)
	queries := workload.Standard(ds, 10, 409)
	if _, err := NewSharded(ds.Table, queries, &ShardedOptions{Dim: 99}); err == nil {
		t.Error("out-of-range split dimension accepted")
	}
	if _, err := NewSharded(ds.Table, queries, &ShardedOptions{Dim: 0, Splits: []int64{5, 5}}); err == nil {
		t.Error("duplicate splits accepted")
	}
}

// TestShardedEpochMonotonic checks the aggregate Epoch counter: it moves
// exactly when some shard swaps and by that shard's delta.
func TestShardedEpochMonotonic(t *testing.T) {
	s, _, ds, _ := shardedUnderTest(t, 4)
	if s.NumShards() < 2 {
		t.Skip("need multiple shards")
	}
	s.Execute(NewQuery(ds.Table.NumCols()), NewCount()) // seed the reservoirs
	e0 := s.Epoch()
	if !s.Shard(0).TriggerRelearn() {
		t.Fatal("relearn did not start")
	}
	s.Shard(0).Wait()
	if got := s.Epoch(); got != e0+1 {
		t.Fatalf("Epoch went %d -> %d after one shard swap, want +1", e0, got)
	}
}

func ExampleNewSharded() {
	ds := dataset.Sales(2000, 1)
	queries := workload.Standard(ds, 10, 2)
	s, _ := NewSharded(ds.Table, queries, &ShardedOptions{Shards: 4, Dim: 0,
		Build: &Options{CalibrationLayouts: 2, GDSteps: 3, Seed: 3}})
	defer s.Close()
	agg := NewCount()
	s.Execute(NewQuery(ds.Table.NumCols()).WithRange(0, 0, 1000), agg)
	fmt.Println(agg.Result() > 0)
	// Output: true
}
