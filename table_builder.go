package flood

import (
	"fmt"
	"time"

	"flood/internal/encode"
)

// TableBuilder accumulates logical-typed rows or columns for one schema and
// encodes them into the physical int64 Table the index engine operates on.
// Load data either row-at-a-time with AppendRow or column-at-a-time with the
// Set*Column methods (one style per column; Build validates that every
// column ends up the same length), then call Build.
//
// Build fits the schema's encoders to the loaded data: string dictionaries
// are constructed over the distinct values observed, inferred-digit float
// scalers pick the smallest exact precision. The fitted schema is what
// decodes Select results and resolves typed predicates afterwards.
//
// A TableBuilder is single-goroutine; it may be reused for another load
// after Build, but doing so refits the shared Schema to the new data —
// only safe once nothing built from the previous table still decodes
// through that schema (see the Schema doc).
type TableBuilder struct {
	s       *Schema
	ints    [][]int64
	floats  [][]float64
	strings [][]string
	times   [][]time.Time
}

// NewTableBuilder returns a builder for the schema. Equivalent to
// s.NewTableBuilder().
func NewTableBuilder(s *Schema) *TableBuilder {
	if len(s.fields) == 0 {
		panic("flood: schema has no columns")
	}
	n := len(s.fields)
	return &TableBuilder{
		s:       s,
		ints:    make([][]int64, n),
		floats:  make([][]float64, n),
		strings: make([][]string, n),
		times:   make([][]time.Time, n),
	}
}

// NewTableBuilder returns a TableBuilder loading data for this schema.
func (s *Schema) NewTableBuilder() *TableBuilder { return NewTableBuilder(s) }

// AppendRow adds one logical row, one value per schema column in declaration
// order. Int64 columns accept int64 or int; float columns float64; string
// columns string; time columns time.Time. On error nothing is appended, so
// the caller can fix the row and retry without corrupting the builder.
func (b *TableBuilder) AppendRow(vals ...any) error {
	if len(vals) != len(b.s.fields) {
		return fmt.Errorf("flood: row has %d values, schema has %d columns", len(vals), len(b.s.fields))
	}
	// Validate every value before touching any column: a mid-row type error
	// must not leave ragged columns behind.
	for i, v := range vals {
		ok := false
		switch b.s.fields[i].kind {
		case KindInt64:
			switch v.(type) {
			case int64, int:
				ok = true
			}
		case KindFloat64:
			_, ok = v.(float64)
		case KindString:
			_, ok = v.(string)
		case KindTime:
			_, ok = v.(time.Time)
		}
		if !ok {
			return b.typeErr(i, v)
		}
	}
	for i, v := range vals {
		switch b.s.fields[i].kind {
		case KindInt64:
			switch x := v.(type) {
			case int64:
				b.ints[i] = append(b.ints[i], x)
			case int:
				b.ints[i] = append(b.ints[i], int64(x))
			}
		case KindFloat64:
			b.floats[i] = append(b.floats[i], v.(float64))
		case KindString:
			b.strings[i] = append(b.strings[i], v.(string))
		case KindTime:
			b.times[i] = append(b.times[i], v.(time.Time))
		}
	}
	return nil
}

func (b *TableBuilder) typeErr(i int, v any) error {
	f := &b.s.fields[i]
	return fmt.Errorf("flood: column %q (%s): incompatible value %T", f.name, f.kind, v)
}

// SetInt64Column loads an int64 column wholesale (the slice is retained, not
// copied, until Build).
func (b *TableBuilder) SetInt64Column(name string, col []int64) error {
	i, err := b.colFor(name, KindInt64)
	if err != nil {
		return err
	}
	b.ints[i] = col
	return nil
}

// SetFloat64Column loads a float column wholesale.
func (b *TableBuilder) SetFloat64Column(name string, col []float64) error {
	i, err := b.colFor(name, KindFloat64)
	if err != nil {
		return err
	}
	b.floats[i] = col
	return nil
}

// SetStringColumn loads a string column wholesale.
func (b *TableBuilder) SetStringColumn(name string, col []string) error {
	i, err := b.colFor(name, KindString)
	if err != nil {
		return err
	}
	b.strings[i] = col
	return nil
}

// SetTimeColumn loads a time column wholesale.
func (b *TableBuilder) SetTimeColumn(name string, col []time.Time) error {
	i, err := b.colFor(name, KindTime)
	if err != nil {
		return err
	}
	b.times[i] = col
	return nil
}

func (b *TableBuilder) colFor(name string, want Kind) (int, error) {
	i, ok := b.s.byName[name]
	if !ok {
		return 0, fmt.Errorf("flood: unknown schema column %q", name)
	}
	if f := &b.s.fields[i]; f.kind != want {
		return 0, fmt.Errorf("flood: column %q is %s, not %s", name, f.kind, want)
	}
	return i, nil
}

// NumRows returns the length of the longest loaded column (Build fails
// unless every column matches it).
func (b *TableBuilder) NumRows() int {
	n := 0
	for i := range b.s.fields {
		if l := b.colLen(i); l > n {
			n = l
		}
	}
	return n
}

func (b *TableBuilder) colLen(i int) int {
	switch b.s.fields[i].kind {
	case KindFloat64:
		return len(b.floats[i])
	case KindString:
		return len(b.strings[i])
	case KindTime:
		return len(b.times[i])
	default:
		return len(b.ints[i])
	}
}

// Build fits the schema's encoders to the loaded data, encodes every column
// to int64, and constructs the Table. The builder's logical columns are
// released; the returned table is ready for flood.Build (or any baseline),
// and the schema now decodes that table's values.
func (b *TableBuilder) Build() (*Table, error) {
	n := b.NumRows()
	cols := make([][]int64, len(b.s.fields))
	for i := range b.s.fields {
		if l := b.colLen(i); l != n {
			return nil, fmt.Errorf("flood: column %q has %d rows, want %d", b.s.fields[i].name, l, n)
		}
		f := &b.s.fields[i]
		switch f.kind {
		case KindInt64:
			cols[i] = b.ints[i]
		case KindFloat64:
			sc := f.scaler
			if f.digits < 0 {
				var err error
				sc, err = encode.InferDecimalScaler(b.floats[i], 9)
				if err != nil {
					return nil, fmt.Errorf("flood: column %q: %w", f.name, err)
				}
				f.scaler = sc
			}
			enc, err := sc.Encode(b.floats[i])
			if err != nil {
				return nil, fmt.Errorf("flood: column %q: %w", f.name, err)
			}
			cols[i] = enc
		case KindString:
			f.dict = encode.BuildDictionary(b.strings[i])
			enc, err := f.dict.Encode(b.strings[i])
			if err != nil {
				return nil, fmt.Errorf("flood: column %q: %w", f.name, err)
			}
			cols[i] = enc
		case KindTime:
			cols[i] = f.tcodec.Encode(b.times[i])
		}
	}
	tbl, err := NewTable(b.s.Names(), cols)
	if err != nil {
		return nil, err
	}
	// Release the logical columns so the builder can be reused without
	// pinning the previous load.
	for i := range b.s.fields {
		b.ints[i], b.floats[i], b.strings[i], b.times[i] = nil, nil, nil, nil
	}
	return tbl, nil
}
